// Golden-baseline regression tests: pinned numeric behaviour of the
// schedulers on fixed configurations. Regenerate after *intentional*
// behaviour changes with:
//   PASERTA_UPDATE_BASELINES=1 ./build/tests/test_regression
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "apps/atr.h"
#include "apps/synthetic.h"
#include "common/error.h"
#include "harness/regression.h"

namespace paserta {
namespace {

std::filesystem::path baseline_dir() {
#ifdef PASERTA_SOURCE_DIR
  return std::filesystem::path(PASERTA_SOURCE_DIR) / "tests" / "baselines";
#else
  return "tests/baselines";
#endif
}

bool update_mode() { return std::getenv("PASERTA_UPDATE_BASELINES"); }

void run_case(const std::string& name, const Application& app,
              const ExperimentConfig& cfg, const std::vector<double>& loads) {
  const auto points = sweep_load(app, cfg, loads);
  const auto path = baseline_dir() / (name + ".csv");
  if (update_mode()) {
    std::filesystem::create_directories(baseline_dir());
    std::ofstream out(path);
    write_baseline(out, points);
    GTEST_SKIP() << "baseline " << path << " regenerated";
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing baseline " << path
                         << " (regenerate with PASERTA_UPDATE_BASELINES=1)";
  const BaselineDiff diff = check_baseline(in, points);
  EXPECT_TRUE(diff.ok) << (diff.mismatches.empty() ? ""
                                                   : diff.mismatches[0]);
  for (const auto& m : diff.mismatches) ADD_FAILURE() << m;
}

ExperimentConfig small_config(const LevelTable& table, int cpus) {
  ExperimentConfig cfg;
  cfg.cpus = cpus;
  cfg.table = table;
  cfg.runs = 60;
  cfg.seed = 20020818;
  return cfg;
}

TEST(Regression, AtrTransmeta2Cpu) {
  run_case("atr_transmeta_2cpu", apps::build_atr(),
           small_config(LevelTable::transmeta_tm5400(), 2),
           {0.25, 0.5, 0.75, 1.0});
}

TEST(Regression, AtrXscale6Cpu) {
  run_case("atr_xscale_6cpu", apps::build_atr(),
           small_config(LevelTable::intel_xscale(), 6), {0.4, 0.8});
}

TEST(Regression, SyntheticXscale2Cpu) {
  run_case("synthetic_xscale_2cpu", apps::build_synthetic(),
           small_config(LevelTable::intel_xscale(), 2), {0.3, 0.6, 0.9});
}

// ---------------------------------------------------------- module itself

TEST(BaselineMachinery, RoundTripPasses) {
  ExperimentConfig cfg = small_config(LevelTable::intel_xscale(), 2);
  cfg.runs = 5;
  const auto points = sweep_load(apps::build_synthetic(), cfg, {0.5});
  std::ostringstream oss;
  write_baseline(oss, points);
  std::istringstream iss(oss.str());
  const BaselineDiff diff = check_baseline(iss, points);
  EXPECT_TRUE(diff.ok) << (diff.mismatches.empty() ? ""
                                                   : diff.mismatches[0]);
}

TEST(BaselineMachinery, DetectsDrift) {
  ExperimentConfig cfg = small_config(LevelTable::intel_xscale(), 2);
  cfg.runs = 5;
  const auto points = sweep_load(apps::build_synthetic(), cfg, {0.5});
  std::ostringstream oss;
  write_baseline(oss, points);

  // Different seed -> different numbers -> the baseline must complain.
  cfg.seed = 99;
  const auto drifted = sweep_load(apps::build_synthetic(), cfg, {0.5});
  std::istringstream iss(oss.str());
  const BaselineDiff diff = check_baseline(iss, drifted);
  EXPECT_FALSE(diff.ok);
  EXPECT_FALSE(diff.mismatches.empty());
}

TEST(BaselineMachinery, ToleranceAllowsSmallDeviation) {
  ExperimentConfig cfg = small_config(LevelTable::intel_xscale(), 2);
  cfg.runs = 10;
  const auto a = sweep_load(apps::build_synthetic(), cfg, {0.5});
  cfg.runs = 11;  // slightly different sample
  const auto b = sweep_load(apps::build_synthetic(), cfg, {0.5});
  std::ostringstream oss;
  write_baseline(oss, a);
  std::istringstream strict(oss.str());
  EXPECT_FALSE(check_baseline(strict, b).ok);
  std::istringstream loose(oss.str());
  EXPECT_TRUE(check_baseline(loose, b, 0.25).ok);
}

TEST(BaselineMachinery, RejectsGarbage) {
  std::istringstream iss("not,a,baseline\n");
  EXPECT_THROW(check_baseline(iss, {}), Error);
}

TEST(BaselineMachinery, ReportsMissingAndExtraKeys) {
  ExperimentConfig cfg = small_config(LevelTable::intel_xscale(), 2);
  cfg.runs = 3;
  const auto one = sweep_load(apps::build_synthetic(), cfg, {0.5});
  const auto two = sweep_load(apps::build_synthetic(), cfg, {0.5, 0.8});
  std::ostringstream oss;
  write_baseline(oss, two);
  std::istringstream iss(oss.str());
  const BaselineDiff diff = check_baseline(iss, one);
  EXPECT_FALSE(diff.ok);  // baseline has points the fresh run lacks
}

}  // namespace
}  // namespace paserta
