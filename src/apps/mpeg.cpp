#include "apps/mpeg.h"

#include <cmath>
#include <string>

#include "common/error.h"

namespace paserta::apps {
namespace {

SimTime scaled(SimTime wcet, double alpha) {
  auto t = SimTime{
      static_cast<std::int64_t>(alpha * static_cast<double>(wcet.ps) + 0.5)};
  if (t <= SimTime::zero()) t = SimTime{1};
  return std::min(t, wcet);
}

/// One frame-type alternative: `slices` parallel decoders followed by
/// `mc_passes` serial motion-compensation tasks.
Program frame_alternative(const MpegConfig& cfg, const char* type,
                          SimTime slice_wcet, int mc_passes) {
  Program alt;
  SectionSpec sec;
  for (int s = 0; s < cfg.slices; ++s) {
    sec.tasks.push_back(TaskSpec{
        std::string(type) + "_slice" + std::to_string(s), slice_wcet,
        scaled(slice_wcet, cfg.alpha)});
  }
  alt.section(std::move(sec));
  for (int pass = 0; pass < mc_passes; ++pass) {
    alt.task(std::string(type) + "_mc" + std::to_string(pass), cfg.mc_wcet,
             scaled(cfg.mc_wcet, cfg.alpha));
  }
  return alt;
}

}  // namespace

Program mpeg_program(const MpegConfig& cfg) {
  PASERTA_REQUIRE(std::abs(cfg.p_i + cfg.p_p + cfg.p_b - 1.0) < 1e-9,
                  "frame-type probabilities must sum to 1");
  PASERTA_REQUIRE(cfg.p_i > 0.0 && cfg.p_p > 0.0 && cfg.p_b > 0.0,
                  "frame-type probabilities must be positive");
  PASERTA_REQUIRE(cfg.slices >= 1, "need at least one slice decoder");
  PASERTA_REQUIRE(cfg.alpha > 0.0 && cfg.alpha <= 1.0,
                  "alpha must be in (0,1]");

  Program p;
  p.task("parse", cfg.parse_wcet, scaled(cfg.parse_wcet, cfg.alpha));
  p.branch("frame_type",
           {{cfg.p_i, frame_alternative(cfg, "I", cfg.slice_wcet_i, 0)},
            {cfg.p_p, frame_alternative(cfg, "P", cfg.slice_wcet_p, 1)},
            {cfg.p_b, frame_alternative(cfg, "B", cfg.slice_wcet_b, 2)}});
  p.task("deblock", cfg.deblock_wcet, scaled(cfg.deblock_wcet, cfg.alpha));
  return p;
}

Application build_mpeg(const MpegConfig& cfg) {
  return build_application("mpeg", mpeg_program(cfg));
}

}  // namespace paserta::apps
