# Empty dependencies file for atr_pipeline.
# This may be replaced when dependencies are built.
