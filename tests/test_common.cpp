// Unit tests for common utilities: SimTime arithmetic, the deterministic
// RNG, streaming statistics and table rendering.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/time.h"

namespace paserta {
namespace {

// ---------------------------------------------------------------- SimTime

TEST(SimTime, ConversionsRoundTrip) {
  EXPECT_EQ(SimTime::from_us(1.0).ps, 1'000'000);
  EXPECT_EQ(SimTime::from_ms(1.0).ps, 1'000'000'000);
  EXPECT_EQ(SimTime::from_sec(1.0).ps, 1'000'000'000'000);
  EXPECT_DOUBLE_EQ(SimTime::from_ms(2.5).ms(), 2.5);
  EXPECT_DOUBLE_EQ(SimTime::from_us(7.25).us(), 7.25);
}

TEST(SimTime, Arithmetic) {
  const SimTime a = SimTime::from_us(10);
  const SimTime b = SimTime::from_us(4);
  EXPECT_EQ((a + b).us(), 14.0);
  EXPECT_EQ((a - b).us(), 6.0);
  EXPECT_EQ((a * 3).us(), 30.0);
  EXPECT_TRUE(b < a);
  EXPECT_TRUE((b - a).is_negative());
}

TEST(SimTime, ScaleTimeRoundsUp) {
  // 10 us of work at f_max stretched to half speed -> exactly 20 us.
  EXPECT_EQ(scale_time(SimTime::from_us(10), 1000, 500).us(), 20.0);
  // Non-divisible case rounds up by at most 1 ps.
  const SimTime t = scale_time(SimTime{10}, 3, 7);
  EXPECT_EQ(t.ps, 5);  // ceil(30/7) = 5
}

TEST(SimTime, ScaleTimeLargeValuesNoOverflow) {
  // One hour of work scaled by GHz ratios must not overflow int64 via the
  // 128-bit intermediate.
  const SimTime hour = SimTime::from_sec(3600);
  const SimTime scaled = scale_time(hour, 1'000'000'000, 999'999'999);
  EXPECT_GT(scaled, hour);
  EXPECT_LT(scaled.sec(), 3600.01);
}

TEST(SimTime, CyclesConversion) {
  // 300 cycles at 100 MHz = 3 us.
  EXPECT_EQ(cycles_to_time(300, 100 * kMHz).us(), 3.0);
  // And back.
  EXPECT_EQ(time_to_cycles(SimTime::from_us(3), 100 * kMHz), 300u);
  // Rounding: 1 cycle at 3 Hz rounds up to ceil(1e12/3) ps.
  EXPECT_EQ(cycles_to_time(1, 3).ps, 333'333'333'334);
}

TEST(SimTime, ToStringPicksUnit) {
  EXPECT_EQ(to_string(SimTime::from_ms(5)), "5.000ms");
  EXPECT_EQ(to_string(SimTime::from_us(5)), "5.000us");
  EXPECT_EQ(to_string(SimTime::from_ns(5)), "5.000ns");
  EXPECT_EQ(to_string(SimTime{5}), "5ps");
}

// -------------------------------------------------------------------- Rng

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextBelowBounds) {
  Rng rng(99);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.next_below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(Rng, NextBelowZeroThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.next_below(0), Error);
}

TEST(Rng, GaussianMoments) {
  Rng rng(2024);
  RunningStat st;
  for (int i = 0; i < 200000; ++i) st.add(rng.next_gaussian());
  EXPECT_NEAR(st.mean(), 0.0, 0.02);
  EXPECT_NEAR(st.stddev(), 1.0, 0.02);
}

TEST(Rng, NormalParameters) {
  Rng rng(5);
  RunningStat st;
  for (int i = 0; i < 100000; ++i) st.add(rng.next_normal(10.0, 2.0));
  EXPECT_NEAR(st.mean(), 10.0, 0.05);
  EXPECT_NEAR(st.stddev(), 2.0, 0.05);
}

TEST(Rng, DiscreteMatchesWeights) {
  Rng rng(31);
  const std::vector<double> w{0.2, 0.5, 0.3};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.next_discrete(w)];
  EXPECT_NEAR(counts[0] / double(n), 0.2, 0.01);
  EXPECT_NEAR(counts[1] / double(n), 0.5, 0.01);
  EXPECT_NEAR(counts[2] / double(n), 0.3, 0.01);
}

TEST(Rng, DiscreteRejectsBadWeights) {
  Rng rng(1);
  EXPECT_THROW(rng.next_discrete(std::vector<double>{}), Error);
  EXPECT_THROW(rng.next_discrete(std::vector<double>{0.0, 0.0}), Error);
  EXPECT_THROW(rng.next_discrete(std::vector<double>{1.0, -0.5}), Error);
}

// Golden streams: the exact first variates of seed 42 (and a stream-seed
// spot check), pinned as literals. Any change to the generator core, the
// splitmix64 seeding, the double conversion, the polar gaussian or the
// discrete walk — including "harmless" refactors like the header inlining
// this guards — shifts every seeded experiment in the repo; this test makes
// such a change impossible to miss. Hex float literals are exact.
TEST(Rng, GoldenStreamSeed42) {
  {
    Rng r(42);
    EXPECT_EQ(r.next_u64(), 15021278609987233951ull);
    EXPECT_EQ(r.next_u64(), 5881210131331364753ull);
    EXPECT_EQ(r.next_u64(), 18149643915985481100ull);
    EXPECT_EQ(r.next_u64(), 12933668939759105464ull);
  }
  {
    Rng r(42);
    EXPECT_EQ(r.next_double(), 0x1.a0ec9a9e88ecdp-1);
    EXPECT_EQ(r.next_double(), 0x1.467905d15dbccp-2);
    EXPECT_EQ(r.next_double(), 0x1.f7c0f9f61849dp-1);
    EXPECT_EQ(r.next_double(), 0x1.66fb3ec019b06p-1);
  }
  {
    Rng r(42);
    EXPECT_EQ(r.next_gaussian(), 0x1.f679d98b6ab7bp-1);
    EXPECT_EQ(r.next_gaussian(), -0x1.21a610c887574p-1);  // cached spare
    EXPECT_EQ(r.next_gaussian(), 0x1.571f94d19c30ap+0);
    EXPECT_EQ(r.next_gaussian(), 0x1.9bf7e7b2c7e67p-2);
  }
  {
    Rng r(42);
    const std::vector<double> w{0.2, 0.5, 0.3};
    std::string drawn;
    for (int i = 0; i < 8; ++i)
      drawn += static_cast<char>('0' + r.next_discrete(w));
    EXPECT_EQ(drawn, "21222101");
  }
  EXPECT_EQ(Rng::stream_seed(42, 0), 5139283748462763858ull);
  EXPECT_EQ(Rng::stream_seed(42, 1), 6349198060258255764ull);
}

// The unchecked prenorm overload must walk the weights exactly like the
// checked one: same indices drawn, same stream consumed.
TEST(Rng, DiscretePrenormMatchesChecked) {
  const std::vector<double> w{0.05, 1.25, 0.0, 0.7, 2.0};
  double total = 0.0;
  for (double x : w) total += x;  // same left-to-right sum next_discrete uses
  Rng a(2026), b(2026);
  for (int i = 0; i < 5000; ++i)
    ASSERT_EQ(a.next_discrete(w), b.next_discrete_prenorm(w, total));
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ForkIndependentStreams) {
  Rng a(55);
  Rng child = a.fork();
  // The child stream differs from the parent's continuation.
  bool any_diff = false;
  for (int i = 0; i < 16; ++i)
    if (a.next_u64() != child.next_u64()) any_diff = true;
  EXPECT_TRUE(any_diff);
}

// ------------------------------------------------------------ RunningStat

TEST(RunningStat, BasicMoments) {
  RunningStat st;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) st.add(x);
  EXPECT_EQ(st.count(), 8u);
  EXPECT_DOUBLE_EQ(st.mean(), 5.0);
  EXPECT_NEAR(st.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(st.min(), 2.0);
  EXPECT_EQ(st.max(), 9.0);
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat st;
  EXPECT_EQ(st.count(), 0u);
  EXPECT_EQ(st.mean(), 0.0);
  EXPECT_EQ(st.variance(), 0.0);
  EXPECT_EQ(st.ci95_halfwidth(), 0.0);
}

TEST(RunningStat, MergeEqualsSequential) {
  Rng rng(17);
  RunningStat all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_normal(3.0, 1.5);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

// ------------------------------------------------------------------ Table

TEST(Table, CsvEscaping) {
  Table t({"a", "b"});
  t.add_row({"x,y", "he said \"hi\""});
  std::ostringstream oss;
  t.write_csv(oss);
  EXPECT_EQ(oss.str(), "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n");
}

TEST(Table, RowWidthChecked) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, PrettyAlignsColumns) {
  Table t({"name", "v"});
  t.add_row({"long-name", "1"});
  t.add_row({"x", "22"});
  std::ostringstream oss;
  t.write_pretty(oss);
  const std::string s = oss.str();
  EXPECT_NE(s.find("long-name"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

}  // namespace
}  // namespace paserta
