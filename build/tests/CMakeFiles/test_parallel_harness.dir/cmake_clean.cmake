file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_harness.dir/test_parallel_harness.cpp.o"
  "CMakeFiles/test_parallel_harness.dir/test_parallel_harness.cpp.o.d"
  "test_parallel_harness"
  "test_parallel_harness.pdb"
  "test_parallel_harness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
