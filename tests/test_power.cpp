// Unit tests for DVS level tables and the power/energy model.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "power/power_model.h"

namespace paserta {
namespace {

TEST(LevelTable, TransmetaShape) {
  const LevelTable t = LevelTable::transmeta_tm5400();
  EXPECT_EQ(t.size(), 16u);
  EXPECT_EQ(t.f_min(), 200 * kMHz);
  EXPECT_EQ(t.f_max(), 700 * kMHz);
  EXPECT_DOUBLE_EQ(t.min_level().volts, 1.10);
  EXPECT_DOUBLE_EQ(t.max_level().volts, 1.65);
  // ~33 MHz steps.
  const Freq step = t.level(1).freq - t.level(0).freq;
  EXPECT_NEAR(static_cast<double>(step), 500e6 / 15.0, 1e6);
}

TEST(LevelTable, XScaleShape) {
  const LevelTable t = LevelTable::intel_xscale();
  EXPECT_EQ(t.size(), 5u);
  EXPECT_EQ(t.f_min(), 150 * kMHz);
  EXPECT_EQ(t.f_max(), 1000 * kMHz);
  EXPECT_DOUBLE_EQ(t.level(1).volts, 1.0);
  EXPECT_EQ(t.level(2).freq, 600 * kMHz);
}

TEST(LevelTable, QuantizeUpPicksNextLevel) {
  const LevelTable t = LevelTable::intel_xscale();
  EXPECT_EQ(t.level(t.quantize_up(500 * kMHz)).freq, 600 * kMHz);
  EXPECT_EQ(t.level(t.quantize_up(600 * kMHz)).freq, 600 * kMHz);
  EXPECT_EQ(t.level(t.quantize_up(601 * kMHz)).freq, 800 * kMHz);
}

TEST(LevelTable, QuantizeUpClampsAtExtremes) {
  const LevelTable t = LevelTable::intel_xscale();
  // Below the minimum speed: run at f_min (the paper's key constraint).
  EXPECT_EQ(t.quantize_up(1), 0u);
  EXPECT_EQ(t.level(t.quantize_up(10 * kMHz)).freq, 150 * kMHz);
  // Above the maximum: clamp to f_max.
  EXPECT_EQ(t.level(t.quantize_up(2000 * kMHz)).freq, 1000 * kMHz);
}

TEST(LevelTable, IndexOf) {
  const LevelTable t = LevelTable::intel_xscale();
  EXPECT_EQ(t.index_of(800 * kMHz), 3u);
  EXPECT_THROW(t.index_of(123 * kMHz), Error);
}

TEST(LevelTable, SyntheticConstruction) {
  const LevelTable t =
      LevelTable::synthetic("s", 5, 100 * kMHz, 500 * kMHz, 1.0, 2.0);
  EXPECT_EQ(t.size(), 5u);
  EXPECT_EQ(t.level(0).freq, 100 * kMHz);
  EXPECT_EQ(t.level(4).freq, 500 * kMHz);
  EXPECT_DOUBLE_EQ(t.level(2).volts, 1.5);
}

TEST(LevelTable, SingleLevelSynthetic) {
  const LevelTable t =
      LevelTable::synthetic("one", 1, 100 * kMHz, 500 * kMHz, 1.0, 2.0);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.f_max(), 500 * kMHz);
}

TEST(LevelTable, RejectsUnsortedAndEmpty) {
  EXPECT_THROW(LevelTable("bad", {}), Error);
  EXPECT_THROW(LevelTable("bad", {{200 * kMHz, 1.2}, {100 * kMHz, 1.0}}),
               Error);
  EXPECT_THROW(LevelTable("bad", {{100 * kMHz, 1.2}, {200 * kMHz, 1.0}}),
               Error);  // voltage decreasing with frequency
}

// ------------------------------------------------------------- PowerModel

TEST(PowerModel, CubicPowerLaw) {
  // P = Cef * V^2 * f.
  const PowerModel pm(LevelTable::intel_xscale(), 1e-9, 0.05);
  EXPECT_NEAR(pm.power(pm.table().index_of(1000 * kMHz)),
              1e-9 * 1.8 * 1.8 * 1e9, 1e-12);
  EXPECT_NEAR(pm.max_power(), 3.24, 1e-9);
  EXPECT_NEAR(pm.idle_power(), 0.05 * 3.24, 1e-9);
}

TEST(PowerModel, HalfSpeedQuartersEnergyWithIdealVoltage) {
  // The paper's motivating example (§2.3): half speed with proportional
  // voltage -> quarter of the energy for the same work, double the time.
  const LevelTable t =
      LevelTable::synthetic("lin", 2, 500 * kMHz, 1000 * kMHz, 0.9, 1.8);
  const PowerModel pm(t, 1e-9, 0.0);
  const SimTime work = SimTime::from_ms(10);  // at f_max
  const Energy e_full = pm.busy_energy(1, work);
  const Energy e_half = pm.busy_energy(0, scale_time(work, 1000, 500));
  EXPECT_NEAR(e_half / e_full, 0.25, 1e-9);
}

TEST(PowerModel, BusyEnergyLinearInTime) {
  const PowerModel pm(LevelTable::intel_xscale());
  const Energy e1 = pm.busy_energy(2, SimTime::from_ms(1));
  const Energy e2 = pm.busy_energy(2, SimTime::from_ms(2));
  EXPECT_NEAR(e2, 2.0 * e1, 1e-15);
}

TEST(PowerModel, TransitionEnergyUsesHigherLevel) {
  const PowerModel pm(LevelTable::intel_xscale());
  const SimTime t = SimTime::from_us(5);
  const Energy up = pm.transition_energy(0, 4, t);
  const Energy down = pm.transition_energy(4, 0, t);
  EXPECT_DOUBLE_EQ(up, down);
  EXPECT_NEAR(up, pm.max_power() * t.sec(), 1e-15);
}

TEST(PowerModel, RejectsBadParameters) {
  EXPECT_THROW(PowerModel(LevelTable::intel_xscale(), -1.0, 0.05), Error);
  EXPECT_THROW(PowerModel(LevelTable::intel_xscale(), 1e-9, 1.5), Error);
}

// -------------------------------------------------------------- Overheads

TEST(Overheads, WorstCaseBudget) {
  Overheads ovh;
  ovh.speed_compute_cycles = 300;
  ovh.speed_change_time = SimTime::from_us(5);
  // Budget = 300 cycles at f_min (slowest possible) + switch time.
  const LevelTable t = LevelTable::intel_xscale();
  const SimTime budget = ovh.worst_case_budget(t);
  EXPECT_EQ(budget, cycles_to_time(300, 150 * kMHz) + SimTime::from_us(5));
  EXPECT_EQ(budget, SimTime::from_us(7));  // 2 us + 5 us
}

TEST(Overheads, ZeroOverheadsZeroBudget) {
  Overheads ovh;
  ovh.speed_compute_cycles = 0;
  ovh.speed_change_time = SimTime::zero();
  EXPECT_EQ(ovh.worst_case_budget(LevelTable::intel_xscale()),
            SimTime::zero());
}

}  // namespace
}  // namespace paserta
