#include "obs/metrics.h"

#include <sstream>

#include "common/error.h"
#include "harness/json.h"

namespace paserta {

std::uint64_t Counter::value() const {
  std::uint64_t total = 0;
  for (int s = 0; s < kMaxShards; ++s) total += shard_value(s);
  return total;
}

void Counter::reset() {
  for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
}

double Gauge::value() const {
  double total = 0.0;
  for (const Shard& s : shards_)
    total += s.v.load(std::memory_order_relaxed);
  return total;
}

void Gauge::reset() {
  for (Shard& s : shards_) s.v.store(0.0, std::memory_order_relaxed);
}

Histogram::Histogram(std::span<const double> upper_bounds)
    : bounds_(upper_bounds.begin(), upper_bounds.end()) {
  PASERTA_REQUIRE(bounds_.size() + 1 <= kMaxBuckets,
                  "histogram limited to " << kMaxBuckets - 1 << " bounds, got "
                                          << bounds_.size());
  for (std::size_t i = 1; i < bounds_.size(); ++i)
    PASERTA_REQUIRE(bounds_[i - 1] < bounds_[i],
                    "histogram bounds must be strictly ascending");
}

std::uint64_t Histogram::bucket_value(std::size_t b) const {
  std::uint64_t total = 0;
  for (const Shard& s : shards_)
    total += s.buckets[b].load(std::memory_order_relaxed);
  return total;
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (std::size_t b = 0; b < bucket_count(); ++b) total += bucket_value(b);
  return total;
}

double Histogram::sum() const {
  double total = 0.0;
  for (const Shard& s : shards_)
    total += s.sum.load(std::memory_order_relaxed);
  return total;
}

void Histogram::reset() {
  for (Shard& s : shards_) {
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    s.sum.store(0.0, std::memory_order_relaxed);
  }
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(m_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(m_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::span<const double> upper_bounds) {
  std::lock_guard<std::mutex> lock(m_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(upper_bounds);
    return *slot;
  }
  PASERTA_REQUIRE(
      slot->bounds() ==
          std::vector<double>(upper_bounds.begin(), upper_bounds.end()),
      "histogram '" << name << "' re-registered with different bounds");
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(m_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) {
    MetricsSnapshot::CounterRow row;
    row.name = name;
    row.value = c->value();
    int last = -1;
    for (int s = 0; s < kMaxShards; ++s)
      if (c->shard_value(s) != 0) last = s;
    for (int s = 0; s <= last; ++s) row.shards.push_back(c->shard_value(s));
    snap.counters.push_back(std::move(row));
  }
  for (const auto& [name, g] : gauges_)
    snap.gauges.push_back({name, g->value()});
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramRow row;
    row.name = name;
    row.bounds = h->bounds();
    for (std::size_t b = 0; b < h->bucket_count(); ++b)
      row.buckets.push_back(h->bucket_value(b));
    row.count = h->count();
    row.sum = h->sum();
    snap.histograms.push_back(std::move(row));
  }
  return snap;  // std::map iteration keeps every section name-sorted
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(m_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

std::string metrics_to_json(const MetricsSnapshot& snap) {
  std::ostringstream os;
  os << "{\n  \"counters\": [\n";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    const auto& c = snap.counters[i];
    os << "    {\"name\": \"" << json_escape(c.name)
       << "\", \"value\": " << c.value << ", \"shards\": [";
    for (std::size_t s = 0; s < c.shards.size(); ++s)
      os << (s ? ", " : "") << c.shards[s];
    os << "]}" << (i + 1 < snap.counters.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"gauges\": [\n";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    const auto& g = snap.gauges[i];
    os << "    {\"name\": \"" << json_escape(g.name)
       << "\", \"value\": " << json_num(g.value) << "}"
       << (i + 1 < snap.gauges.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"histograms\": [\n";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& h = snap.histograms[i];
    os << "    {\"name\": \"" << json_escape(h.name)
       << "\", \"count\": " << h.count << ", \"sum\": " << json_num(h.sum)
       << ", \"buckets\": [";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      const bool overflow = b >= h.bounds.size();
      os << (b ? ", " : "") << "{\"le\": "
         << (overflow ? std::string("\"inf\"") : json_num(h.bounds[b]))
         << ", \"count\": " << h.buckets[b] << "}";
    }
    os << "]}" << (i + 1 < snap.histograms.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

}  // namespace paserta
