// Ablation: speculative-floor rounding. The paper's print is ambiguous on
// whether SS1/AS round a between-levels speculative speed to the higher or
// lower level; both are deadline-safe (GSS backstops). Rounding down runs
// slower up front but forces corrective switches when the greedy component
// catches up; rounding up wastes some speculation headroom. This bench
// quantifies the difference on both platforms.
#include "apps/synthetic.h"
#include "bench_util.h"

using namespace paserta;

int main(int argc, char** argv) {
  const int runs = benchutil::runs_from_args(argc, argv, 500);
  const Application syn = apps::build_synthetic();
  const std::vector<double> loads = {0.3, 0.5, 0.7, 0.9};

  for (const LevelTable& table :
       {LevelTable::transmeta_tm5400(), LevelTable::intel_xscale()}) {
    for (auto rounding : {PolicyOptions::SpecRounding::Up,
                          PolicyOptions::SpecRounding::Down}) {
      auto cfg = benchutil::paper_config(table, 2, runs);
      cfg.schemes = {Scheme::SS1, Scheme::AS};
      cfg.policy_options.spec_rounding = rounding;
      const char* r =
          rounding == PolicyOptions::SpecRounding::Up ? "up" : "down";
      benchutil::emit("Ablation.rounding." + table.name() + "." + r,
                      std::string("Energy vs load, synthetic, 2 CPUs, "
                                  "speculative rounding = ") + r,
                      sweep_load(syn, cfg, loads), "load");
    }
  }
  return 0;
}
