// Tests for the experiment harness: normalization, sweeps, reporting.
#include <gtest/gtest.h>

#include <sstream>

#include "apps/synthetic.h"
#include "common/error.h"
#include "harness/experiment.h"
#include "harness/report.h"

namespace paserta {
namespace {

ExperimentConfig quick_config(int runs = 25) {
  ExperimentConfig cfg;
  cfg.cpus = 2;
  cfg.table = LevelTable::intel_xscale();
  cfg.runs = runs;
  cfg.seed = 1234;
  cfg.verify_traces = true;
  return cfg;
}

TEST(Harness, PointProducesAllSchemes) {
  const Application app = apps::build_synthetic();
  const ExperimentConfig cfg = quick_config();
  const SimTime w = canonical_worst_makespan(
      app, cfg.cpus, cfg.overheads.worst_case_budget(cfg.table));
  const SweepPoint pt = run_point(app, cfg, w * 2, 0.5);

  EXPECT_EQ(pt.stats.size(), cfg.schemes.size());
  for (const SchemeStats& st : pt.stats) {
    EXPECT_EQ(st.norm_energy.count(), 25u) << to_string(st.scheme);
    EXPECT_EQ(st.deadline_misses, 0u) << to_string(st.scheme);
    EXPECT_EQ(st.verify_failures, 0u) << to_string(st.scheme);
    EXPECT_GT(st.norm_energy.mean(), 0.0);
    // Power management never exceeds NPM on the same scenarios.
    EXPECT_LE(st.norm_energy.max(), 1.0 + 1e-9) << to_string(st.scheme);
  }
  EXPECT_GT(pt.npm_energy.mean(), 0.0);
}

TEST(Harness, DeterministicForSeed) {
  const Application app = apps::build_synthetic();
  const ExperimentConfig cfg = quick_config(10);
  const SimTime d = SimTime::from_ms(150);
  const SweepPoint a = run_point(app, cfg, d, 0.0);
  const SweepPoint b = run_point(app, cfg, d, 0.0);
  for (std::size_t i = 0; i < a.stats.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.stats[i].norm_energy.mean(),
                     b.stats[i].norm_energy.mean());
    EXPECT_DOUBLE_EQ(a.stats[i].speed_changes.mean(),
                     b.stats[i].speed_changes.mean());
  }
}

TEST(Harness, SweepLoadSetsDeadlines) {
  const Application app = apps::build_synthetic();
  ExperimentConfig cfg = quick_config(5);
  cfg.schemes = {Scheme::GSS};
  const auto points = sweep_load(app, cfg, {0.25, 0.5, 1.0});
  ASSERT_EQ(points.size(), 3u);
  // deadline = W / load.
  EXPECT_EQ(points[0].deadline, points[0].worst_makespan * 4);
  EXPECT_EQ(points[1].deadline, points[1].worst_makespan * 2);
  EXPECT_EQ(points[2].deadline.ps, points[2].worst_makespan.ps);
  for (const auto& p : points)
    EXPECT_EQ(p.of(Scheme::GSS).deadline_misses, 0u);
}

TEST(Harness, SweepAlphaRedrawsAcets) {
  const Application app = apps::build_synthetic();
  ExperimentConfig cfg = quick_config(5);
  cfg.schemes = {Scheme::GSS, Scheme::SS1};
  const auto points = sweep_alpha(app, cfg, 0.8, {0.2, 0.9});
  ASSERT_EQ(points.size(), 2u);
  // Lower alpha means more dynamic slack: GSS energy should drop.
  EXPECT_LT(points[0].of(Scheme::GSS).norm_energy.mean(),
            points[1].of(Scheme::GSS).norm_energy.mean());
  for (const auto& p : points)
    for (const auto& st : p.stats) EXPECT_EQ(st.deadline_misses, 0u);
}

TEST(Harness, GreedyBeatsNoManagement) {
  const Application app = apps::build_synthetic();
  ExperimentConfig cfg = quick_config(30);
  cfg.schemes = {Scheme::SPM, Scheme::GSS};
  const SweepPoint pt =
      run_point(app, cfg, SimTime::from_ms(66 * 2), 0.5);  // load ~0.5
  EXPECT_LT(pt.of(Scheme::GSS).norm_energy.mean(), 0.9);
  EXPECT_LT(pt.of(Scheme::SPM).norm_energy.mean(), 1.0);
}

TEST(Harness, OfScheme) {
  const Application app = apps::build_synthetic();
  ExperimentConfig cfg = quick_config(2);
  cfg.schemes = {Scheme::GSS};
  const SweepPoint pt = run_point(app, cfg, SimTime::from_ms(200), 0.0);
  EXPECT_EQ(pt.of(Scheme::GSS).scheme, Scheme::GSS);
  EXPECT_THROW(pt.of(Scheme::AS), Error);
}

TEST(Harness, SweepRange) {
  const auto xs = sweep_range(0.1, 0.5, 0.1);
  ASSERT_EQ(xs.size(), 5u);
  EXPECT_DOUBLE_EQ(xs.front(), 0.1);
  EXPECT_DOUBLE_EQ(xs.back(), 0.5);
  EXPECT_THROW(sweep_range(1.0, 0.0, 0.1), Error);
  EXPECT_THROW(sweep_range(0.0, 1.0, 0.0), Error);
}

TEST(Harness, RejectsBadPoint) {
  const Application app = apps::build_synthetic();
  ExperimentConfig cfg = quick_config(0);
  EXPECT_THROW(run_point(app, cfg, SimTime::from_ms(100), 0.0), Error);
  cfg = quick_config(1);
  EXPECT_THROW(run_point(app, cfg, SimTime::zero(), 0.0), Error);
}

// ----------------------------------------------------------------- report

TEST(Report, SweepTableShape) {
  const Application app = apps::build_synthetic();
  ExperimentConfig cfg = quick_config(3);
  cfg.schemes = {Scheme::GSS, Scheme::AS};
  const auto points = sweep_load(app, cfg, {0.5, 0.8});
  const Table t = sweep_table(points, "load");
  EXPECT_EQ(t.rows(), 4u);  // 2 points x 2 schemes
  EXPECT_EQ(t.header().front(), "load");

  const Table s = sweep_series(points, "load");
  EXPECT_EQ(s.rows(), 2u);
  ASSERT_EQ(s.header().size(), 3u);
  EXPECT_EQ(s.header()[1], "GSS");
  EXPECT_EQ(s.header()[2], "AS");
}

TEST(Report, PrintFigureEmitsCsv) {
  const Application app = apps::build_synthetic();
  ExperimentConfig cfg = quick_config(2);
  cfg.schemes = {Scheme::GSS};
  const auto points = sweep_load(app, cfg, {0.5});
  std::ostringstream oss;
  print_figure(oss, "Fig.T", "test figure", points, "load");
  const std::string out = oss.str();
  EXPECT_NE(out.find("# Fig.T: test figure"), std::string::npos);
  EXPECT_NE(out.find("load,GSS"), std::string::npos);
}

}  // namespace
}  // namespace paserta
