// Ablation: voltage-transition overhead (paper §5 discusses 25-150 us for
// real hardware of the era and assumes 5 us). Sweeps the switch cost and
// shows how the dynamic schemes' savings erode — and why speculation
// (fewer switches) wins at high overhead.
#include "apps/synthetic.h"
#include "bench_util.h"

using namespace paserta;

int main(int argc, char** argv) {
  const int runs = benchutil::runs_from_args(argc, argv, 500);
  const Application syn = apps::build_synthetic();
  constexpr double kLoad = 0.7;

  for (const LevelTable& table :
       {LevelTable::transmeta_tm5400(), LevelTable::intel_xscale()}) {
    std::vector<SweepPoint> points;
    for (double ovh_us : {0.0, 1.0, 5.0, 25.0, 100.0, 500.0}) {
      auto cfg = benchutil::paper_config(table, 2, runs);
      cfg.overheads.speed_change_time = SimTime::from_us(ovh_us);
      const SimTime w = canonical_worst_makespan(
          syn, cfg.cpus, cfg.overheads.worst_case_budget(cfg.table));
      const SimTime deadline{
          static_cast<std::int64_t>(static_cast<double>(w.ps) / kLoad + 1)};
      points.push_back(run_point(syn, cfg, deadline, ovh_us));
    }
    benchutil::emit("Ablation.overhead." + table.name(),
                    "Energy vs speed-change overhead (us), synthetic, "
                    "2 CPUs, load=0.7",
                    points, "overhead_us");
  }
  return 0;
}
