#include "serve/loadgen.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <sstream>
#include <thread>

#include "harness/json.h"
#include "obs/metrics.h"
#include "serve/server.h"
#include "serve/service.h"

namespace paserta {
namespace {

int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::uint64_t counter_value(const MetricsSnapshot& snap,
                            const std::string& name) {
  for (const auto& row : snap.counters)
    if (row.name == name) return row.value;
  return 0;
}

}  // namespace

ServeClient::ServeClient(std::uint16_t port)
    : fd_(connect_loopback(port)) {}

ServeClient::~ServeClient() {
  if (fd_ >= 0) ::close(fd_);
}

std::string ServeClient::request(const std::string& line) {
  if (fd_ < 0) return {};
  if (!send_all(fd_, line + "\n")) return {};
  return read_line();
}

std::string ServeClient::read_line() {
  if (fd_ < 0) return {};
  for (;;) {
    const std::size_t nl = carry_.find('\n');
    if (nl != std::string::npos) {
      std::string out = carry_.substr(0, nl);
      carry_.erase(0, nl + 1);
      return out;
    }
    char buf[4096];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n <= 0) {
      ::close(fd_);
      fd_ = -1;
      return {};
    }
    carry_.append(buf, static_cast<std::size_t>(n));
  }
}

std::string http_request(std::uint16_t port, const std::string& path,
                         const std::string& body) {
  const int fd = connect_loopback(port);
  if (fd < 0) return {};
  std::ostringstream req;
  if (body.empty()) {
    req << "GET " << path << " HTTP/1.1\r\n";
  } else {
    req << "POST " << path << " HTTP/1.1\r\n"
        << "Content-Length: " << body.size() << "\r\n";
  }
  req << "Host: 127.0.0.1\r\nConnection: close\r\n\r\n" << body;
  if (!send_all(fd, req.str())) {
    ::close(fd);
    return {};
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
    response.append(buf, static_cast<std::size_t>(n));
  ::close(fd);
  const std::size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? std::string{}
                                    : response.substr(split + 4);
}

ServeThroughputReport measure_serve_throughput(
    SimService& service, SimServer& server, const std::string& request_line,
    const std::vector<int>& client_counts, int requests_per_client,
    const std::string& label, int runs) {
  ServeThroughputReport report;
  report.label = label;
  report.runs = runs;

  {
    // Warm-up: faults in the code paths and seeds the graph store and
    // offline cache, the daemon's steady state.
    ServeClient warm(server.port());
    warm.request(request_line);
  }

  for (int clients : client_counts) {
    const MetricsSnapshot before = service.registry().snapshot();
    std::vector<std::thread> threads;
    std::atomic<std::uint64_t> completed{0};
    const auto t0 = std::chrono::steady_clock::now();
    threads.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        ServeClient client(server.port());
        for (int i = 0; i < requests_per_client; ++i) {
          if (!client.request(request_line).empty())
            completed.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (auto& t : threads) t.join();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const MetricsSnapshot after = service.registry().snapshot();

    ServeThroughputSample s;
    s.clients = clients;
    s.requests = completed.load();
    s.seconds = seconds;
    s.requests_per_sec = seconds > 0.0
                             ? static_cast<double>(s.requests) / seconds
                             : 0.0;
    const std::uint64_t hits =
        counter_value(after, "offline.cache.hits") -
        counter_value(before, "offline.cache.hits");
    const std::uint64_t misses =
        counter_value(after, "offline.cache.misses") -
        counter_value(before, "offline.cache.misses");
    s.cache_hit_rate = (hits + misses) > 0
                           ? static_cast<double>(hits) /
                                 static_cast<double>(hits + misses)
                           : 0.0;
    s.coalesced = counter_value(after, "serve.coalesced") -
                  counter_value(before, "serve.coalesced");
    const double p50 = service.latency_quantile(0.50);
    const double p95 = service.latency_quantile(0.95);
    s.p50_ms = std::isnan(p50) ? 0.0 : p50 * 1e3;
    s.p95_ms = std::isnan(p95) ? 0.0 : p95 * 1e3;
    report.samples.push_back(s);
  }
  return report;
}

std::string serve_throughput_to_json(const ServeThroughputReport& report) {
  std::ostringstream os;
  JsonWriter w(os, 2);
  w.begin_object()
      .key("label").value(report.label)
      .key("runs").value(report.runs)
      .key("samples").begin_array();
  for (const ServeThroughputSample& s : report.samples) {
    w.begin_object()
        .key("clients").value(s.clients)
        .key("requests").value(s.requests)
        .key("seconds").value(s.seconds)
        .key("requests_per_sec").value(s.requests_per_sec)
        .key("cache_hit_rate").value(s.cache_hit_rate)
        .key("coalesced").value(s.coalesced)
        .key("p50_ms").value(s.p50_ms)
        .key("p95_ms").value(s.p95_ms)
        .end_object();
  }
  w.end_array().end_object();
  os << "\n";
  return os.str();
}

}  // namespace paserta
