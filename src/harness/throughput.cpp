#include "harness/throughput.h"

#include <chrono>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/error.h"

namespace paserta {
namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string num(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream oss;
  oss << std::setprecision(12) << v;
  return oss.str();
}

}  // namespace

ThroughputReport measure_throughput(const Application& app,
                                    ExperimentConfig cfg, SimTime deadline,
                                    const std::vector<int>& thread_counts,
                                    const std::string& label) {
  PASERTA_REQUIRE(!thread_counts.empty(), "need at least one thread count");
  ThroughputReport report;
  report.label = label;
  report.runs = cfg.runs;
  report.schemes = static_cast<int>(cfg.schemes.size());

  // Untimed warm-up: fault in code paths and allocator state so the first
  // timed sample is not penalized relative to the later ones.
  cfg.threads = thread_counts.front();
  (void)run_point(app, cfg, deadline, 0.0);

  using clock = std::chrono::steady_clock;
  for (int threads : thread_counts) {
    cfg.threads = threads;
    const auto t0 = clock::now();
    (void)run_point(app, cfg, deadline, 0.0);
    const auto t1 = clock::now();
    ThroughputSample s;
    s.threads = threads;
    s.seconds = std::chrono::duration<double>(t1 - t0).count();
    s.runs_per_sec =
        s.seconds > 0.0 ? static_cast<double>(cfg.runs) / s.seconds : 0.0;
    report.samples.push_back(s);
  }
  return report;
}

std::string throughput_to_json(const ThroughputReport& report) {
  std::ostringstream os;
  os << "{\n"
     << "  \"benchmark\": \"throughput\",\n"
     << "  \"label\": \"" << escape(report.label) << "\",\n"
     << "  \"runs\": " << report.runs << ",\n"
     << "  \"schemes\": " << report.schemes << ",\n"
     << "  \"samples\": [\n";
  for (std::size_t i = 0; i < report.samples.size(); ++i) {
    const ThroughputSample& s = report.samples[i];
    os << "    {\"threads\": " << s.threads
       << ", \"seconds\": " << num(s.seconds)
       << ", \"runs_per_sec\": " << num(s.runs_per_sec) << "}"
       << (i + 1 < report.samples.size() ? "," : "") << "\n";
  }
  os << "  ]\n"
     << "}\n";
  return os.str();
}

}  // namespace paserta
