#include "sim/fingerprint.h"

#include <cstring>

namespace paserta {
namespace {

/// Default hash: a splitmix64 finalizer per word folded into a running
/// state, length-seeded so prefixes of longer keys do not trivially
/// collide with shorter ones. Quality only affects probe lengths, never
/// correctness — collisions resolve through the full-key compare.
std::uint64_t mix_hash(const std::uint64_t* key, std::size_t words) {
  std::uint64_t h = 0x9E3779B97F4A7C15ULL ^
                    (static_cast<std::uint64_t>(words) * 0xBF58476D1CE4E5B9ULL);
  for (std::size_t i = 0; i < words; ++i) {
    std::uint64_t x = key[i] + h;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    h = x ^ (x >> 31);
  }
  return h;
}

constexpr std::size_t kInitialSlots = 64;

}  // namespace

FingerprintTable::FingerprintTable(std::size_t key_words, HashFn hash)
    : key_words_(key_words),
      hash_(hash != nullptr ? hash : &mix_hash),
      slots_(kInitialSlots, 0),
      mask_(kInitialSlots - 1) {}

bool FingerprintTable::key_equals(std::uint32_t id,
                                  const std::uint64_t* key) const {
  return key_words_ == 0 ||
         std::memcmp(this->key(id), key, key_words_ * sizeof(std::uint64_t)) ==
             0;
}

void FingerprintTable::grow() {
  // Rehash every interned key into a doubled slot array. The stored keys
  // are all distinct, so reinsertion needs no compares — first empty slot
  // on the probe chain wins.
  const std::size_t new_cap = slots_.size() * 2;
  std::vector<std::uint32_t> fresh(new_cap, 0);
  const std::size_t new_mask = new_cap - 1;
  for (std::uint32_t id = 0; id < count_; ++id) {
    std::size_t idx = hash_(key(id), key_words_) & new_mask;
    while (fresh[idx] != 0) idx = (idx + 1) & new_mask;
    fresh[idx] = id + 1;
  }
  slots_ = std::move(fresh);
  mask_ = new_mask;
}

std::uint32_t FingerprintTable::intern(const std::uint64_t* key,
                                       bool& inserted) {
  // Keep the load factor under ~0.7 *before* probing, so the probe below
  // always finds an empty slot.
  if ((count_ + 1) * 10 > slots_.size() * 7) grow();
  std::size_t idx = hash_(key, key_words_) & mask_;
  while (slots_[idx] != 0) {
    const std::uint32_t id = slots_[idx] - 1;
    if (key_equals(id, key)) {
      inserted = false;
      return id;
    }
    idx = (idx + 1) & mask_;
  }
  const auto id = static_cast<std::uint32_t>(count_++);
  keys_.insert(keys_.end(), key, key + key_words_);
  slots_[idx] = id + 1;
  inserted = true;
  return id;
}

std::uint32_t FingerprintTable::find(const std::uint64_t* key) const {
  std::size_t idx = hash_(key, key_words_) & mask_;
  while (slots_[idx] != 0) {
    const std::uint32_t id = slots_[idx] - 1;
    if (key_equals(id, key)) return id;
    idx = (idx + 1) & mask_;
  }
  return kNotFound;
}

}  // namespace paserta
