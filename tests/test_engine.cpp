// Unit tests for the online engine: dispatch rules, greedy slack
// reclamation, cross-processor slack sharing, OR semantics, overhead
// charging and exact energy accounting on hand-computable cases.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.h"
#include "core/offline.h"
#include "sim/engine.h"
#include "sim/verify.h"

namespace paserta {
namespace {

SimTime ms(double v) { return SimTime::from_ms(v); }
TaskSpec t(const char* n, double w, double a) {
  return TaskSpec{n, ms(w), ms(a)};
}

Overheads no_overheads() {
  Overheads o;
  o.speed_compute_cycles = 0;
  o.speed_change_time = SimTime::zero();
  return o;
}

OfflineResult analyze(const Application& app, SimTime deadline, int cpus,
                      const Overheads& ovh, const LevelTable& table) {
  OfflineOptions o;
  o.cpus = cpus;
  o.deadline = deadline;
  o.overhead_budget = ovh.worst_case_budget(table);
  return analyze_offline(app, o);
}

const TaskRecord& record_of(const SimResult& r, const AndOrGraph& g,
                            const std::string& name) {
  for (const TaskRecord& rec : r.trace)
    if (g.node(rec.node).name == name) return rec;
  ADD_FAILURE() << "no trace record for " << name;
  static TaskRecord dummy;
  return dummy;
}

TEST(Engine, NpmSingleTaskExactEnergy) {
  Program p;
  p.task("T", ms(10), ms(10));
  const Application app = build_application("one", p);
  const Overheads ovh = no_overheads();
  const PowerModel pm(LevelTable::intel_xscale());
  const OfflineResult off = analyze(app, ms(20), 1, ovh, pm.table());

  const RunScenario sc = worst_case_scenario(app.graph);
  const SimResult r = simulate(app, off, pm, ovh, Scheme::NPM, sc);

  EXPECT_TRUE(r.deadline_met);
  EXPECT_EQ(r.finish_time, ms(10));
  EXPECT_EQ(r.speed_changes, 0u);
  EXPECT_NEAR(r.busy_energy, pm.max_power() * 0.010, 1e-12);
  EXPECT_NEAR(r.idle_energy, pm.idle_power() * 0.010, 1e-12);
  EXPECT_NEAR(r.overhead_energy, 0.0, 1e-15);
}

TEST(Engine, GssReclaimsStaticSlack) {
  Program p;
  p.task("T", ms(10), ms(10));
  const Application app = build_application("one", p);
  const Overheads ovh = no_overheads();
  const PowerModel pm(LevelTable::intel_xscale());
  const OfflineResult off = analyze(app, ms(20), 1, ovh, pm.table());

  const RunScenario sc = worst_case_scenario(app.graph);
  const SimResult r = simulate(app, off, pm, ovh, Scheme::GSS, sc);

  // Desired 10ms/20ms * 1GHz = 500 MHz -> 600 MHz level; duration
  // 10ms * 1000/600.
  const TaskRecord& rec = record_of(r, app.graph, "T");
  EXPECT_EQ(pm.table().level(rec.level).freq, 600 * kMHz);
  EXPECT_EQ(r.finish_time, scale_time(ms(10), 1000, 600));
  EXPECT_TRUE(r.deadline_met);
  EXPECT_EQ(r.speed_changes, 1u);  // f_max -> 600 MHz
  EXPECT_NEAR(r.busy_energy,
              pm.power(pm.table().index_of(600 * kMHz)) *
                  r.finish_time.sec(),
              1e-12);
  EXPECT_LT(r.total_energy(),
            pm.max_power() * 0.010 + pm.idle_power() * 0.010);
}

TEST(Engine, GssChainReclaimsDynamicSlack) {
  // b's speed depends on how early a finished.
  Program p;
  p.chain({t("a", 6, 3), t("b", 6, 3)});
  const Application app = build_application("chain", p);
  const Overheads ovh = no_overheads();
  const PowerModel pm(LevelTable::intel_xscale());
  const OfflineResult off = analyze(app, ms(24), 1, ovh, pm.table());
  ASSERT_EQ(off.lst(*app.graph.find("a")), ms(12));
  ASSERT_EQ(off.lst(*app.graph.find("b")), ms(18));

  RunScenario sc = worst_case_scenario(app.graph);
  sc.actual[app.graph.find("a")->value] = ms(3);  // a finishes early

  const SimResult r = simulate(app, off, pm, ovh, Scheme::GSS, sc);
  const TaskRecord& ra = record_of(r, app.graph, "a");
  const TaskRecord& rb = record_of(r, app.graph, "b");

  // a: avail 18ms for 6ms -> 334 MHz -> 400 MHz; actual 3ms -> 7.5ms.
  EXPECT_EQ(pm.table().level(ra.level).freq, 400 * kMHz);
  EXPECT_EQ(ra.finish, scale_time(ms(3), 1000, 400));
  // b dispatched at 7.5ms: avail = 24 - 7.5 = 16.5ms for 6ms
  //   -> 364 MHz -> 400 MHz level (no change, no second switch).
  EXPECT_EQ(rb.dispatch_time, ms(7.5));
  EXPECT_EQ(pm.table().level(rb.level).freq, 400 * kMHz);
  EXPECT_EQ(r.speed_changes, 1u);
  EXPECT_TRUE(r.deadline_met);
}

TEST(Engine, SlackSharesAcrossProcessors) {
  // Canonical on 2 CPUs: X(8) on cpu0, Y(4)+Z(4) on cpu1. If X finishes
  // early, cpu0 picks Z (next EO) and inherits the slack.
  Program p;
  p.parallel({t("X", 8, 4), t("Y", 4, 2), t("Z", 4, 2)});
  const Application app = build_application("share", p);
  const Overheads ovh = no_overheads();
  const PowerModel pm(LevelTable::intel_xscale());
  const OfflineResult off = analyze(app, ms(16), 2, ovh, pm.table());

  const NodeId x = *app.graph.find("X");
  const NodeId y = *app.graph.find("Y");
  const NodeId z = *app.graph.find("Z");
  ASSERT_EQ(off.eo(x), 0u);
  ASSERT_EQ(off.eo(y), 1u);
  ASSERT_EQ(off.eo(z), 2u);
  ASSERT_EQ(off.lst(z), ms(12));  // canonical [4,8] shifted by +8

  RunScenario sc = worst_case_scenario(app.graph);
  sc.actual[x.value] = ms(1);  // X finishes very early

  const SimResult r = simulate(app, off, pm, ovh, Scheme::GSS, sc);
  const TaskRecord& rx = record_of(r, app.graph, "X");
  const TaskRecord& rz = record_of(r, app.graph, "Z");
  // Z ran on X's processor (cpu0), ahead of its canonical processor's
  // availability — implicit slack sharing.
  EXPECT_EQ(rx.cpu, 0);
  EXPECT_EQ(rz.cpu, 0);
  EXPECT_LT(rz.dispatch_time, ms(4));
  const VerifyReport rep = verify_trace(app, off, sc, r);
  EXPECT_TRUE(rep.ok) << (rep.violations.empty() ? "" : rep.violations[0]);
}

TEST(Engine, OrForkRunsOnlyChosenAlternative) {
  Program xa, yb;
  xa.task("x", ms(4), ms(2));
  yb.task("y", ms(8), ms(6));
  Program p;
  p.task("pre", ms(2), ms(1));
  p.branch("o", {{0.5, std::move(xa)}, {0.5, std::move(yb)}});
  const Application app = build_application("or", p);
  const Overheads ovh = no_overheads();
  const PowerModel pm(LevelTable::intel_xscale());
  const OfflineResult off = analyze(app, ms(20), 2, ovh, pm.table());

  for (int choice : {0, 1}) {
    std::vector<int> choices(app.graph.size(), -1);
    const StructSegment& br = app.structure.segments[1];
    choices[br.fork.value] = choice;
    const RunScenario sc = worst_case_scenario(app.graph, &choices);
    const SimResult r = simulate(app, off, pm, ovh, Scheme::GSS, sc);

    const char* taken = choice == 0 ? "x" : "y";
    const char* skipped = choice == 0 ? "y" : "x";
    bool saw_taken = false, saw_skipped = false;
    for (const TaskRecord& rec : r.trace) {
      if (app.graph.node(rec.node).name == taken) saw_taken = true;
      if (app.graph.node(rec.node).name == skipped) saw_skipped = true;
    }
    EXPECT_TRUE(saw_taken);
    EXPECT_FALSE(saw_skipped);
    EXPECT_TRUE(r.deadline_met);
    const VerifyReport rep = verify_trace(app, off, sc, r);
    EXPECT_TRUE(rep.ok) << (rep.violations.empty() ? "" : rep.violations[0]);
  }
}

TEST(Engine, NeoJumpsPastUntakenAlternatives) {
  // Short alternative (1 slot) vs long (2 slots): taking the short one
  // forces the join to jump NEO.
  Program shrt, lng;
  shrt.task("s", ms(2), ms(1));
  lng.chain({t("l1", 2, 1), t("l2", 2, 1)});
  Program p;
  p.task("pre", ms(1), ms(1));
  p.branch("o", {{0.5, std::move(shrt)}, {0.5, std::move(lng)}});
  p.task("post", ms(1), ms(1));
  const Application app = build_application("jump", p);
  const Overheads ovh = no_overheads();
  const PowerModel pm(LevelTable::intel_xscale());
  const OfflineResult off = analyze(app, ms(20), 2, ovh, pm.table());

  std::vector<int> choices(app.graph.size(), -1);
  const StructSegment& br = app.structure.segments[1];
  choices[br.fork.value] = 0;  // short path: EO of join > NEO when ready
  const RunScenario sc = worst_case_scenario(app.graph, &choices);
  const SimResult r = simulate(app, off, pm, ovh, Scheme::GSS, sc);

  EXPECT_EQ(r.dispatched, 5u);  // pre, fork, s, join, post
  const VerifyReport rep = verify_trace(app, off, sc, r);
  EXPECT_TRUE(rep.ok) << (rep.violations.empty() ? "" : rep.violations[0]);
}

TEST(Engine, WorstCaseMeetsDeadlineAtFullLoad) {
  // D == W: zero static slack; GSS must run at f_max throughout and finish
  // exactly at the deadline.
  Program p;
  p.chain({t("a", 5, 5), t("b", 5, 5)});
  const Application app = build_application("tight", p);
  const Overheads ovh = no_overheads();
  const PowerModel pm(LevelTable::intel_xscale());
  const OfflineResult off = analyze(app, ms(10), 1, ovh, pm.table());
  ASSERT_TRUE(off.feasible());

  const RunScenario sc = worst_case_scenario(app.graph);
  const SimResult r = simulate(app, off, pm, ovh, Scheme::GSS, sc);
  EXPECT_TRUE(r.deadline_met);
  EXPECT_EQ(r.finish_time, ms(10));
  for (const TaskRecord& rec : r.trace)
    EXPECT_EQ(pm.table().level(rec.level).freq, pm.table().f_max());
}

TEST(Engine, ComputeOverheadChargedPerDynamicDispatch) {
  Program p;
  p.chain({t("a", 5, 5), t("b", 5, 5)});
  const Application app = build_application("ovh", p);
  Overheads ovh;
  ovh.speed_compute_cycles = 1000 * 1000;  // 1 ms at 1 GHz: visible
  ovh.speed_change_time = SimTime::zero();
  const PowerModel pm(LevelTable::intel_xscale());
  const OfflineResult off = analyze(app, ms(40), 1, ovh, pm.table());

  const RunScenario sc = worst_case_scenario(app.graph);
  const SimResult r = simulate(app, off, pm, ovh, Scheme::GSS, sc);
  EXPECT_TRUE(r.deadline_met);
  EXPECT_GT(r.overhead_energy, 0.0);
  // First dispatch happens at f_max: exec starts 1ms (minus nothing) after.
  const TaskRecord& ra = record_of(r, app.graph, "a");
  EXPECT_GE(ra.exec_start - ra.dispatch_time, ms(1));

  // NPM pays no overheads.
  const SimResult rn = simulate(app, off, pm, ovh, Scheme::NPM, sc);
  EXPECT_EQ(rn.overhead_energy, 0.0);
}

TEST(Engine, SwitchOverheadOnlyWhenLevelChanges) {
  Program p;
  p.chain({t("a", 5, 5), t("b", 5, 5)});
  const Application app = build_application("sw", p);
  Overheads ovh;
  ovh.speed_compute_cycles = 0;
  ovh.speed_change_time = SimTime::from_us(100);
  const PowerModel pm(LevelTable::intel_xscale());
  const OfflineResult off = analyze(app, ms(30), 1, ovh, pm.table());

  const RunScenario sc = worst_case_scenario(app.graph);
  const SimResult r = simulate(app, off, pm, ovh, Scheme::GSS, sc);
  EXPECT_TRUE(r.deadline_met);
  // a switches from f_max to 400 MHz (5ms work in ~24.8ms); b lands on the
  // same 400 MHz level (5ms in ~17.3ms) and must not switch again.
  EXPECT_EQ(r.speed_changes, 1u);
  const TaskRecord& ra = record_of(r, app.graph, "a");
  EXPECT_TRUE(ra.switched);
  EXPECT_EQ(ra.exec_start - ra.dispatch_time, SimTime::from_us(100));
}

TEST(Engine, SpeculativeFloorRaisesSpeed) {
  // Plenty of static slack: GSS would drop to f_min, SS1's floor keeps the
  // speed at the speculated level.
  Program p;
  p.task("T", ms(10), ms(8));
  const Application app = build_application("floor", p);
  const Overheads ovh = no_overheads();
  const PowerModel pm(LevelTable::intel_xscale());
  const OfflineResult off = analyze(app, ms(100), 1, ovh, pm.table());

  const RunScenario sc = worst_case_scenario(app.graph);
  const SimResult gss = simulate(app, off, pm, ovh, Scheme::GSS, sc);
  const SimResult ss1 = simulate(app, off, pm, ovh, Scheme::SS1, sc);

  const TaskRecord& rg = record_of(gss, app.graph, "T");
  const TaskRecord& rs = record_of(ss1, app.graph, "T");
  EXPECT_EQ(pm.table().level(rg.level).freq, 150 * kMHz);  // min speed
  EXPECT_EQ(pm.table().level(rs.level).freq, 150 * kMHz);
  // 8ms avg in 100ms -> 80 MHz -> min level anyway; tighten the deadline:
  const OfflineResult off2 = analyze(app, ms(25), 1, ovh, pm.table());
  auto ss1p = make_policy(Scheme::SS1);
  ss1p->reset(off2, pm);
  // 8/25 GHz = 320 MHz -> 400 MHz floor, above GSS's 10/25 -> 400. Equal
  // here; use SS floor vs GSS at looser deadline for the strict case:
  const OfflineResult off3 = analyze(app, ms(50), 1, ovh, pm.table());
  const SimResult g3 = simulate(app, off3, pm, ovh, Scheme::GSS, sc);
  const SimResult s3 = simulate(app, off3, pm, ovh, Scheme::SS1, sc);
  // GSS: 10/50 -> 200 MHz -> 400? no: quantize_up(200 MHz) = 400 MHz;
  // min level is 150. 200 > 150 so GSS runs at 400; SS1: 8/50 = 160 -> 400.
  EXPECT_EQ(pm.table().level(record_of(g3, app.graph, "T").level).freq,
            400 * kMHz);
  EXPECT_EQ(pm.table().level(record_of(s3, app.graph, "T").level).freq,
            400 * kMHz);
}

TEST(Engine, StaticSchemesIgnoreOverheads) {
  Program p;
  p.chain({t("a", 5, 2), t("b", 5, 2)});
  const Application app = build_application("static", p);
  Overheads ovh;
  ovh.speed_compute_cycles = 300;
  ovh.speed_change_time = SimTime::from_us(50);
  const PowerModel pm(LevelTable::intel_xscale());
  const OfflineResult off = analyze(app, ms(20), 1, ovh, pm.table());

  const RunScenario sc = worst_case_scenario(app.graph);
  for (Scheme s : {Scheme::NPM, Scheme::SPM}) {
    const SimResult r = simulate(app, off, pm, ovh, s, sc);
    EXPECT_EQ(r.speed_changes, 0u) << to_string(s);
    EXPECT_EQ(r.overhead_energy, 0.0) << to_string(s);
    EXPECT_TRUE(r.deadline_met) << to_string(s);
  }
}

TEST(Engine, EnergyComponentsSumToTotal) {
  Program p;
  p.chain({t("a", 5, 2), t("b", 5, 2)});
  const Application app = build_application("sum", p);
  Overheads ovh;
  const PowerModel pm(LevelTable::transmeta_tm5400());
  const OfflineResult off = analyze(app, ms(20), 2, ovh, pm.table());
  const RunScenario sc = worst_case_scenario(app.graph);
  const SimResult r = simulate(app, off, pm, ovh, Scheme::GSS, sc);
  EXPECT_NEAR(r.total_energy(),
              r.busy_energy + r.overhead_energy + r.idle_energy, 1e-15);
  EXPECT_GT(r.idle_energy, 0.0);
}

TEST(Engine, ScenarioSizeChecked) {
  Program p;
  p.task("a", ms(1), ms(1));
  const Application app = build_application("chk", p);
  const Overheads ovh = no_overheads();
  const PowerModel pm(LevelTable::intel_xscale());
  const OfflineResult off = analyze(app, ms(10), 1, ovh, pm.table());
  RunScenario sc;  // wrong size
  EXPECT_THROW(simulate(app, off, pm, ovh, Scheme::GSS, sc), Error);
}

TEST(Engine, MoreCpusThanWorkSleepSafely) {
  Program p;
  p.task("only", ms(5), ms(5));
  const Application app = build_application("sleep", p);
  const Overheads ovh = no_overheads();
  const PowerModel pm(LevelTable::intel_xscale());
  const OfflineResult off = analyze(app, ms(10), 6, ovh, pm.table());
  const RunScenario sc = worst_case_scenario(app.graph);
  const SimResult r = simulate(app, off, pm, ovh, Scheme::GSS, sc);
  EXPECT_TRUE(r.deadline_met);
  // Five processors idle the whole window.
  EXPECT_NEAR(r.idle_energy,
              pm.idle_power() * (5 * 0.010 + (ms(10) - r.finish_time).sec()),
              1e-12);
}

TEST(Engine, ExecutedSetMatchesChoices) {
  Program xa, yb;
  xa.task("x", ms(4), ms(2));
  yb.chain({t("y1", 2, 1), t("y2", 2, 1)});
  Program p;
  p.branch("o", {{0.5, std::move(xa)}, {0.5, std::move(yb)}});
  const Application app = build_application("exec", p);

  std::vector<int> choices(app.graph.size(), -1);
  const StructSegment& br = app.structure.segments[0];
  choices[br.fork.value] = 1;
  const RunScenario sc = worst_case_scenario(app.graph, &choices);
  const auto ex = executed_set(app.graph, sc);
  EXPECT_FALSE(ex[app.graph.find("x")->value]);
  EXPECT_TRUE(ex[app.graph.find("y1")->value]);
  EXPECT_TRUE(ex[app.graph.find("y2")->value]);
  EXPECT_TRUE(ex[br.fork.value]);
  EXPECT_TRUE(ex[br.join.value]);
}

}  // namespace
}  // namespace paserta
