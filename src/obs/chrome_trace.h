// Chrome/Perfetto trace-event export for obs/trace.h.
//
// Emits the JSON object format of the Trace Event spec ("traceEvents"
// array of complete "X" and instant "i" events plus "M" thread-name
// metadata), which both chrome://tracing and ui.perfetto.dev load
// directly: one process, one track (tid) per worker-pool slot, span args
// carrying the sweep-point and run indices. Timestamps are microseconds
// relative to the tracer's epoch, as the spec requires.
#pragma once

#include <iosfwd>
#include <string>

namespace paserta {

class Profiler;
class Tracer;

/// Writes the full trace document. Call after all recording threads have
/// joined (Tracer::events contract).
void write_chrome_trace(std::ostream& os, const Tracer& tracer);

/// Same document, plus the profiler's rate-limited counter samples
/// (obs/prof.h) spliced in as Perfetto counter tracks ("C" events): one
/// "prof cycles", "prof instructions" and "prof busy_ns" track per slot
/// that recorded samples, timestamps rebased from the raw steady clock
/// onto the tracer's epoch. A null profiler degrades to the plain export.
void write_chrome_trace(std::ostream& os, const Tracer& tracer,
                        const Profiler* prof);

/// Same document as a string (tests, small traces).
std::string chrome_trace_to_json(const Tracer& tracer);

}  // namespace paserta
