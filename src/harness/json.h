// JSON support for the harness: sweep export, shared emit helpers, and a
// small parser.
//
// The sweep exporter emits a self-describing document: experiment metadata
// plus one object per point with per-scheme statistics (mean, ci95,
// min/max, switches, misses). No external JSON dependency; the emitter
// escapes strings and prints numbers round-trippably. The same escape /
// number helpers back every other JSON writer in the tree (obs/ metrics
// and Chrome traces).
//
// The parser reads any JSON text into a JsonValue tree. It exists for
// round-trip validation — tests parse the documents the writers emit
// (sweep JSON, metrics snapshots, Chrome traces) back and inspect them —
// and for tools that consume the repo's own JSON artifacts. It accepts
// standard JSON (no comments, no trailing commas) and throws
// paserta::Error with a byte offset on malformed input.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "harness/experiment.h"

namespace paserta {

struct JsonExportOptions {
  std::string experiment_id;   // e.g. "fig4a"
  std::string caption;
  std::string x_name = "x";    // "load" or "alpha"
};

void write_sweep_json(std::ostream& os, const std::vector<SweepPoint>& points,
                      const JsonExportOptions& options);

std::string sweep_to_json(const std::vector<SweepPoint>& points,
                          const JsonExportOptions& options);

/// Escapes a string for embedding between JSON double quotes (quotes,
/// backslashes, and control characters).
std::string json_escape(const std::string& s);

/// Round-trippable JSON number (12 significant digits); non-finite values
/// become "null" (JSON has no NaN/Inf).
std::string json_num(double v);

/// Streaming JSON writer shared by every emitter in the tree (sweep
/// export, metrics snapshots, Chrome traces, serve responses). Handles
/// comma placement, string escaping (json_escape) and number formatting
/// (json_num) so callers never hand-roll separators. With indent == 0 the
/// output is compact (single line); with indent > 0 objects and arrays
/// are pretty-printed one member per line.
///
/// Usage:
///   JsonWriter w(os);
///   w.begin_object().key("a").value(1.0).key("b").begin_array()
///       .value("x").end_array().end_object();
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os, int indent = 0)
      : os_(os), indent_(indent) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits an object member key; the next value/begin_* call is its value.
  JsonWriter& key(const std::string& k);

  JsonWriter& value(const std::string& s);
  JsonWriter& value(const char* s);
  JsonWriter& value(double v);
  // long long is the canonical integer overload (int64_t's underlying
  // type varies across LP64/LLP64); the narrower types forward.
  JsonWriter& value(long long v);
  JsonWriter& value(unsigned long long v);
  JsonWriter& value(int v) { return value(static_cast<long long>(v)); }
  JsonWriter& value(unsigned v) {
    return value(static_cast<unsigned long long>(v));
  }
  JsonWriter& value(long v) { return value(static_cast<long long>(v)); }
  JsonWriter& value(unsigned long v) {
    return value(static_cast<unsigned long long>(v));
  }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Splices pre-rendered JSON verbatim in value position (e.g. a
  /// sub-document rendered elsewhere whose bytes must be preserved).
  JsonWriter& raw(const std::string& json);

  /// True once every begin_* has been matched by its end_* and one
  /// top-level value was written.
  bool balanced() const { return stack_.empty() && wrote_top_; }

 private:
  struct Frame {
    char kind;         // '{' or '['
    bool has_items = false;
    bool key_pending = false;
  };

  void before_value();  // separator + indentation management
  void newline_indent(std::size_t depth);

  std::ostream& os_;
  int indent_;
  bool wrote_top_ = false;
  std::vector<Frame> stack_;
};

/// A parsed JSON document node. Object member order is preserved.
struct JsonValue {
  enum class Type { Null, Bool, Number, String, Array, Object };

  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return type == Type::Null; }
  bool is_object() const { return type == Type::Object; }
  bool is_array() const { return type == Type::Array; }

  /// Object member lookup; null when absent or not an object.
  const JsonValue* find(const std::string& key) const;
  /// find() that throws paserta::Error when the key is absent.
  const JsonValue& at(const std::string& key) const;
};

/// Parses one JSON document (throws paserta::Error on malformed input or
/// trailing garbage).
JsonValue json_parse(const std::string& text);

}  // namespace paserta
