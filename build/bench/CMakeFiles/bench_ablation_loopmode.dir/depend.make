# Empty dependencies file for bench_ablation_loopmode.
# This may be replaced when dependencies are built.
