// Tests for the reusable simulation workspace and opt-in trace recording:
// workspace reuse must be observationally identical to the one-shot
// convenience overload, the Monte-Carlo harness must stay bit-identical
// across thread counts, and the degenerate-baseline and sweep-grid fixes
// must hold.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "apps/atr.h"
#include "apps/synthetic.h"
#include "common/error.h"
#include "core/scheduler.h"
#include "harness/experiment.h"
#include "harness/throughput.h"
#include "sim/engine.h"
#include "sim/gantt.h"
#include "sim/scenario.h"
#include "sim/verify.h"

namespace paserta {
namespace {

SimTime ms(double v) { return SimTime::from_ms(v); }

/// Only dummy nodes execute: zero busy energy, and with idle_fraction = 0
/// a zero NPM baseline — the degenerate case of the normalization.
Application all_dummy_app() {
  Program p;
  p.branch("o", {{0.5, Program{}}, {0.5, Program{}}});
  return build_application("empty", p);
}

void expect_same_numbers(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.busy_energy, b.busy_energy);
  EXPECT_EQ(a.overhead_energy, b.overhead_energy);
  EXPECT_EQ(a.idle_energy, b.idle_energy);
  EXPECT_EQ(a.finish_time, b.finish_time);
  EXPECT_EQ(a.speed_changes, b.speed_changes);
  EXPECT_EQ(a.dispatched, b.dispatched);
  EXPECT_EQ(a.deadline_met, b.deadline_met);
}

TEST(Workspace, ReuseMatchesOneShot) {
  const Application app = apps::build_synthetic();
  const PowerModel pm(LevelTable::transmeta_tm5400());
  Overheads ovh;
  OfflineOptions o;
  o.cpus = 2;
  o.deadline = ms(120);
  o.overhead_budget = ovh.worst_case_budget(pm.table());
  const OfflineResult off = analyze_offline(app, o);

  // One workspace serves every scheme and every scenario in sequence; the
  // results must match fresh one-shot simulations exactly, trace included.
  SimWorkspace ws;
  Rng rng(11);
  for (int draw = 0; draw < 4; ++draw) {
    const RunScenario sc = draw_scenario(app.graph, rng);
    for (Scheme s : {Scheme::NPM, Scheme::GSS, Scheme::SS2, Scheme::AS}) {
      auto p1 = make_policy(s);
      p1->reset(off, pm);
      const SimResult one_shot = simulate(app, off, pm, ovh, *p1, sc);

      auto p2 = make_policy(s);
      p2->reset(off, pm);
      const SimResult reused = simulate(app, off, pm, ovh, *p2, sc, ws);

      expect_same_numbers(one_shot, reused);
      ASSERT_EQ(one_shot.trace.size(), reused.trace.size());
      for (std::size_t i = 0; i < one_shot.trace.size(); ++i) {
        EXPECT_EQ(one_shot.trace[i].node, reused.trace[i].node);
        EXPECT_EQ(one_shot.trace[i].cpu, reused.trace[i].cpu);
        EXPECT_EQ(one_shot.trace[i].finish, reused.trace[i].finish);
        EXPECT_EQ(one_shot.trace[i].level, reused.trace[i].level);
      }
    }
  }
}

TEST(Workspace, TraceRecordingOptIn) {
  const Application app = apps::build_synthetic();
  const PowerModel pm(LevelTable::transmeta_tm5400());
  Overheads ovh;
  OfflineOptions o;
  o.cpus = 2;
  o.deadline = ms(120);
  o.overhead_budget = ovh.worst_case_budget(pm.table());
  const OfflineResult off = analyze_offline(app, o);
  Rng rng(12);
  const RunScenario sc = draw_scenario(app.graph, rng);

  SimWorkspace ws;
  auto p = make_policy(Scheme::GSS);
  p->reset(off, pm);
  SimOptions no_trace;
  no_trace.record_trace = false;
  const SimResult silent = simulate(app, off, pm, ovh, *p, sc, ws, no_trace);
  EXPECT_TRUE(silent.trace.empty());
  EXPECT_GT(silent.dispatched, 0u);

  // Turning recording back on through the same workspace still yields the
  // full trace — and identical numbers either way.
  p->reset(off, pm);
  const SimResult traced = simulate(app, off, pm, ovh, *p, sc, ws);
  EXPECT_EQ(traced.trace.size(), traced.dispatched);
  expect_same_numbers(silent, traced);
}

TEST(Workspace, CompletenessCheckAgreesWithInlineAccounting) {
  // The engine's O(1) inline accounting (activated == completed counters
  // maintained during dispatch) replaced the post-run executed_set
  // traversal on the hot path; the traversal survives behind
  // SimOptions::check_completeness. Both modes must accept the same runs
  // and produce identical numbers — on OR-heavy workloads especially,
  // where untaken alternatives must not count as pending work.
  const Application app = apps::build_atr();
  const PowerModel pm(LevelTable::transmeta_tm5400());
  Overheads ovh;
  OfflineOptions o;
  o.cpus = 2;
  o.overhead_budget = ovh.worst_case_budget(pm.table());
  o.deadline = canonical_worst_makespan(app, 2, o.overhead_budget) * 2;
  const OfflineResult off = analyze_offline(app, o);

  SimWorkspace ws;
  Rng rng(77);
  SimOptions fast;
  fast.record_trace = false;
  SimOptions checked = fast;
  checked.check_completeness = true;
  for (int draw = 0; draw < 8; ++draw) {
    const RunScenario sc = draw_scenario(app.graph, rng);
    for (Scheme s : {Scheme::NPM, Scheme::GSS, Scheme::AS}) {
      auto p = make_policy(s);
      p->reset(off, pm);
      const SimResult plain = simulate(app, off, pm, ovh, *p, sc, ws, fast);
      p->reset(off, pm);
      const SimResult audited =
          simulate(app, off, pm, ovh, *p, sc, ws, checked);
      expect_same_numbers(plain, audited);
      EXPECT_EQ(plain.dispatched, audited.dispatched);
    }
  }
}

TEST(Workspace, TraceConsumersRejectTracelessResults) {
  // The verifier and the Gantt renderer need a trace; a result simulated
  // with recording off must produce a clear diagnostic, not a misleading
  // per-node coverage failure.
  const Application app = apps::build_synthetic();
  const PowerModel pm(LevelTable::transmeta_tm5400());
  Overheads ovh;
  OfflineOptions o;
  o.cpus = 2;
  o.deadline = ms(120);
  o.overhead_budget = ovh.worst_case_budget(pm.table());
  const OfflineResult off = analyze_offline(app, o);
  Rng rng(14);
  const RunScenario sc = draw_scenario(app.graph, rng);

  SimWorkspace ws;
  auto p = make_policy(Scheme::GSS);
  p->reset(off, pm);
  SimOptions no_trace;
  no_trace.record_trace = false;
  const SimResult r = simulate(app, off, pm, ovh, *p, sc, ws, no_trace);

  const VerifyReport rep = verify_trace(app, off, sc, r);
  EXPECT_FALSE(rep.ok);
  ASSERT_EQ(rep.violations.size(), 1u);
  EXPECT_NE(rep.violations.front().find("record_trace"), std::string::npos);

  std::ostringstream gantt;
  EXPECT_THROW(render_gantt(gantt, app, off, pm, r), Error);
}

TEST(Workspace, NoStateBleedsAcrossRuns) {
  // The same scenario through the same workspace twice in a row: a stale
  // counter, queue entry or trace record from run 1 would show up in run 2.
  const Application app = apps::build_synthetic();
  const PowerModel pm(LevelTable::intel_xscale());
  Overheads ovh;
  OfflineOptions o;
  o.cpus = 3;
  o.deadline = ms(120);
  o.overhead_budget = ovh.worst_case_budget(pm.table());
  const OfflineResult off = analyze_offline(app, o);
  Rng rng(13);
  const RunScenario sc = draw_scenario(app.graph, rng);

  SimWorkspace ws;
  auto p = make_policy(Scheme::AS);
  p->reset(off, pm);
  const SimResult first = simulate(app, off, pm, ovh, *p, sc, ws);
  p->reset(off, pm);
  const SimResult second = simulate(app, off, pm, ovh, *p, sc, ws);
  expect_same_numbers(first, second);
  EXPECT_EQ(first.trace.size(), second.trace.size());
}

TEST(Harness, WorkspacePathMatchesHandRolledLoop) {
  // run_point (workspace reuse, traces off) against a hand-rolled loop
  // through the one-shot trace-recording overload: statistics must agree
  // to the last bit.
  const Application app = apps::build_synthetic();
  const SimTime deadline = ms(120);
  ExperimentConfig cfg;
  cfg.cpus = 2;
  cfg.table = LevelTable::intel_xscale();
  cfg.schemes = {Scheme::GSS, Scheme::SS2};
  cfg.runs = 25;
  cfg.seed = 777;
  const SweepPoint point = run_point(app, cfg, deadline, 0.0);

  const PowerModel pm(cfg.table, cfg.c_ef, cfg.idle_fraction);
  OfflineOptions o;
  o.cpus = cfg.cpus;
  o.deadline = deadline;
  o.overhead_budget = cfg.overheads.worst_case_budget(cfg.table);
  const OfflineResult off = analyze_offline(app, o);

  RunningStat npm_energy;
  std::vector<RunningStat> norm(cfg.schemes.size());
  auto npm = make_policy(Scheme::NPM);
  for (int run = 0; run < cfg.runs; ++run) {
    Rng rng(Rng::stream_seed(cfg.seed, static_cast<std::uint64_t>(run)));
    const RunScenario sc = draw_scenario(app.graph, rng);
    npm->reset(off, pm);
    const SimResult base = simulate(app, off, pm, cfg.overheads, *npm, sc);
    npm_energy.add(base.total_energy());
    for (std::size_t s = 0; s < cfg.schemes.size(); ++s) {
      auto p = make_policy(cfg.schemes[s], cfg.policy_options);
      p->reset(off, pm);
      const SimResult r = simulate(app, off, pm, cfg.overheads, *p, sc);
      norm[s].add(r.total_energy() / base.total_energy());
    }
  }

  EXPECT_EQ(point.degenerate_runs, 0u);
  EXPECT_DOUBLE_EQ(point.npm_energy.mean(), npm_energy.mean());
  EXPECT_DOUBLE_EQ(point.npm_energy.variance(), npm_energy.variance());
  for (std::size_t s = 0; s < cfg.schemes.size(); ++s) {
    EXPECT_EQ(point.stats[s].norm_energy.count(), norm[s].count());
    EXPECT_DOUBLE_EQ(point.stats[s].norm_energy.mean(), norm[s].mean());
    EXPECT_DOUBLE_EQ(point.stats[s].norm_energy.variance(),
                     norm[s].variance());
  }
}

TEST(Harness, ThreadCountInvariantWithWorkspaces) {
  // Per-worker workspaces must not perturb the bit-identical guarantee,
  // including the oversubscribed case (more threads than runs).
  const Application app = apps::build_synthetic();
  const SimTime deadline = ms(120);
  ExperimentConfig cfg;
  cfg.cpus = 2;
  cfg.table = LevelTable::intel_xscale();
  cfg.runs = 12;
  cfg.seed = 2002;
  cfg.threads = 1;
  const SweepPoint serial = run_point(app, cfg, deadline, 0.0);
  for (int threads : {4, cfg.runs + 1}) {
    cfg.threads = threads;
    const SweepPoint parallel = run_point(app, cfg, deadline, 0.0);
    ASSERT_EQ(serial.stats.size(), parallel.stats.size());
    EXPECT_EQ(serial.degenerate_runs, parallel.degenerate_runs);
    EXPECT_DOUBLE_EQ(serial.npm_energy.mean(), parallel.npm_energy.mean());
    EXPECT_DOUBLE_EQ(serial.npm_energy.variance(),
                     parallel.npm_energy.variance());
    for (std::size_t s = 0; s < serial.stats.size(); ++s) {
      EXPECT_DOUBLE_EQ(serial.stats[s].norm_energy.mean(),
                       parallel.stats[s].norm_energy.mean());
      EXPECT_DOUBLE_EQ(serial.stats[s].norm_energy.variance(),
                       parallel.stats[s].norm_energy.variance());
      EXPECT_DOUBLE_EQ(serial.stats[s].speed_changes.mean(),
                       parallel.stats[s].speed_changes.mean());
      EXPECT_DOUBLE_EQ(serial.stats[s].finish_frac.mean(),
                       parallel.stats[s].finish_frac.mean());
      EXPECT_EQ(serial.stats[s].deadline_misses,
                parallel.stats[s].deadline_misses);
    }
  }
}

TEST(Harness, SweepRangeHitsEveryGridPoint) {
  // (0.1, 1.0, 0.1): (to - from) / step evaluates to 8.999999999999998,
  // so both naive truncation and the old `x += step` accumulation dropped
  // or duplicated grid points. Exactly ten strictly increasing values.
  const std::vector<double> xs = sweep_range(0.1, 1.0, 0.1);
  ASSERT_EQ(xs.size(), 10u);
  EXPECT_DOUBLE_EQ(xs.front(), 0.1);
  EXPECT_EQ(xs.back(), 1.0);
  for (std::size_t i = 1; i < xs.size(); ++i) EXPECT_LT(xs[i - 1], xs[i]);
}

TEST(Harness, SweepRangeOffGridEndpointExcluded) {
  // The endpoint is only emitted when it sits on the grid: 1.0 is not a
  // multiple of 0.4 from 0, so the sweep stops at 0.8.
  const std::vector<double> xs = sweep_range(0.0, 1.0, 0.4);
  ASSERT_EQ(xs.size(), 3u);
  EXPECT_DOUBLE_EQ(xs[0], 0.0);
  EXPECT_DOUBLE_EQ(xs[1], 0.4);
  EXPECT_DOUBLE_EQ(xs[2], 0.8);
}

TEST(Harness, SweepRangeSinglePoint) {
  const std::vector<double> xs = sweep_range(0.5, 0.5, 0.1);
  ASSERT_EQ(xs.size(), 1u);
  EXPECT_DOUBLE_EQ(xs.front(), 0.5);
}

TEST(Harness, DegenerateBaselineCountedNotNaN) {
  // All-dummy workload with zero idle power: the NPM baseline consumes no
  // energy, so normalized energy is undefined. Such runs must be counted
  // and excluded — never divided through.
  const Application app = all_dummy_app();
  ExperimentConfig cfg;
  cfg.cpus = 2;
  cfg.table = LevelTable::intel_xscale();
  cfg.idle_fraction = 0.0;
  cfg.runs = 8;
  cfg.seed = 5;
  const SweepPoint point = run_point(app, cfg, ms(10), 0.0);

  EXPECT_EQ(point.degenerate_runs, 8u);
  EXPECT_EQ(point.npm_energy.mean(), 0.0);
  for (const SchemeStats& st : point.stats) {
    EXPECT_EQ(st.norm_energy.count(), 0u);  // no NaN ever entered
    EXPECT_EQ(st.deadline_misses, 0u);
    EXPECT_EQ(st.finish_frac.mean(), 0.0);
  }
}

TEST(Scheduler, DegenerateFramesCountedNotNaN) {
  PowerAwareScheduler::Config cfg;
  cfg.cpus = 2;
  cfg.table = LevelTable::intel_xscale();
  cfg.idle_fraction = 0.0;
  cfg.deadline = ms(10);
  PowerAwareScheduler sched(all_dummy_app(), cfg);
  Rng rng(7);
  for (int i = 0; i < 5; ++i) (void)sched.run_frame(rng);

  const auto& sum = sched.summary();
  EXPECT_EQ(sum.frames, 5u);
  EXPECT_EQ(sum.degenerate_frames, 5u);
  EXPECT_EQ(sum.norm_energy.count(), 0u);
  EXPECT_EQ(sum.deadline_misses, 0u);
}

TEST(Scheduler, RecordTraceConfig) {
  PowerAwareScheduler::Config cfg;
  cfg.cpus = 2;
  cfg.load = 0.5;
  PowerAwareScheduler traced(apps::build_synthetic(), cfg);
  cfg.record_trace = false;
  PowerAwareScheduler silent(apps::build_synthetic(), cfg);

  Rng rng_a(21), rng_b(21);
  for (int i = 0; i < 3; ++i) {
    const SimResult a = traced.run_frame(rng_a);
    const SimResult b = silent.run_frame(rng_b);
    EXPECT_EQ(a.trace.size(), a.dispatched);
    EXPECT_TRUE(b.trace.empty());
    expect_same_numbers(a, b);
  }
  EXPECT_DOUBLE_EQ(traced.summary().norm_energy.mean(),
                   silent.summary().norm_energy.mean());
  EXPECT_EQ(traced.summary().degenerate_frames, 0u);
}

TEST(Throughput, MeasuresAndEmitsJson) {
  const Application app = apps::build_synthetic();
  ExperimentConfig cfg;
  cfg.cpus = 2;
  cfg.table = LevelTable::intel_xscale();
  cfg.schemes = {Scheme::GSS};
  cfg.runs = 10;
  cfg.seed = 1;
  const ThroughputReport rep =
      measure_throughput(app, cfg, ms(120), {1, 2}, "unit\"test");

  ASSERT_EQ(rep.samples.size(), 2u);
  EXPECT_EQ(rep.runs, 10);
  EXPECT_EQ(rep.schemes, 1);
  EXPECT_EQ(rep.samples[0].threads, 1);
  EXPECT_EQ(rep.samples[1].threads, 2);
  for (const ThroughputSample& s : rep.samples) {
    EXPECT_GT(s.seconds, 0.0);
    EXPECT_GT(s.runs_per_sec, 0.0);
  }

  const std::string json = throughput_to_json(rep);
  EXPECT_NE(json.find("\"benchmark\": \"throughput\""), std::string::npos);
  EXPECT_NE(json.find("\"label\": \"unit\\\"test\""), std::string::npos);
  EXPECT_NE(json.find("\"runs\": 10"), std::string::npos);
  EXPECT_NE(json.find("\"runs_per_sec\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  EXPECT_EQ(json.back(), '\n');
}

TEST(Throughput, BestOfRepsKeepsOneSamplePerThreadCount) {
  const Application app = apps::build_synthetic();
  ExperimentConfig cfg;
  cfg.cpus = 2;
  cfg.table = LevelTable::intel_xscale();
  cfg.schemes = {Scheme::GSS};
  cfg.runs = 10;
  cfg.seed = 1;
  // Repetitions collapse to the fastest timing — still exactly one sample
  // per thread count, and a finite positive one.
  const ThroughputReport rep =
      measure_throughput(app, cfg, ms(120), {1, 2}, "reps", /*reps=*/3);
  ASSERT_EQ(rep.samples.size(), 2u);
  for (const ThroughputSample& s : rep.samples) {
    EXPECT_GT(s.seconds, 0.0);
    EXPECT_GT(s.runs_per_sec, 0.0);
  }
  EXPECT_THROW(measure_throughput(app, cfg, ms(120), {1}, "bad", 0), Error);
  EXPECT_THROW(
      measure_sweep_throughput(app, cfg, {0.5}, {1}, "bad", 0), Error);
}

// ------------------------------------------------ measurement history

TEST(Throughput, HistoryEntrySplicesProvenance) {
  const std::string entry = throughput_history_entry(
      "abc1234", /*dirty=*/false, "2026-08-06", "{\n\"point\": {\"x\": 1}\n}\n");
  EXPECT_NE(entry.find("\"git_rev\": \"abc1234\""), std::string::npos);
  EXPECT_NE(entry.find("\"dirty\": false"), std::string::npos);
  EXPECT_NE(entry.find("\"date\": \"2026-08-06\""), std::string::npos);
  EXPECT_NE(entry.find("\"point\": {\"x\": 1}"), std::string::npos);
  EXPECT_EQ(std::count(entry.begin(), entry.end(), '{'),
            std::count(entry.begin(), entry.end(), '}'));
}

TEST(Throughput, HistoryEntryRecordsDirtyTree) {
  const std::string entry = throughput_history_entry(
      "abc1234", /*dirty=*/true, "2026-08-06", "{\"point\": {}}");
  EXPECT_NE(entry.find("\"dirty\": true"), std::string::npos);
  // The provenance order pins dirty between git_rev and date.
  EXPECT_LT(entry.find("\"git_rev\""), entry.find("\"dirty\""));
  EXPECT_LT(entry.find("\"dirty\""), entry.find("\"date\""));
}

TEST(Throughput, HistoryAppendStartsNewArray) {
  const std::string out = throughput_history_append("", "{\"a\": 1}\n");
  EXPECT_EQ(out, "[\n{\"a\": 1}\n]\n");
  EXPECT_EQ(throughput_history_append("  \n\t", "{\"a\": 1}\n"), out);
}

TEST(Throughput, HistoryAppendExtendsArray) {
  const std::string once = throughput_history_append("", "{\"a\": 1}\n");
  const std::string twice = throughput_history_append(once, "{\"b\": 2}\n");
  EXPECT_EQ(twice, "[\n{\"a\": 1},\n{\"b\": 2}\n]\n");
  EXPECT_EQ(throughput_history_append("[]", "{\"c\": 3}\n"),
            "[\n{\"c\": 3}\n]\n");
}

TEST(Throughput, HistoryAppendWrapsLegacyBaseline) {
  // The pre-history file format was a single JSON object; appending must
  // keep it as the first entry instead of discarding the old numbers.
  const std::string legacy = "{\n\"point\": {\"old\": true}\n}\n";
  const std::string out = throughput_history_append(legacy, "{\"new\": 1}\n");
  EXPECT_EQ(out.front(), '[');
  EXPECT_LT(out.find("\"old\": true"), out.find("\"new\": 1"));
  EXPECT_EQ(out.substr(out.size() - 2), "]\n");
  // A second append now follows the array path.
  const std::string again = throughput_history_append(out, "{\"new\": 2}\n");
  EXPECT_EQ(std::count(again.begin(), again.end(), '['), 1);
  EXPECT_LT(again.find("\"new\": 1"), again.find("\"new\": 2"));
}

}  // namespace
}  // namespace paserta
