// JSON support for the harness: sweep export, shared emit helpers, and a
// small parser.
//
// The sweep exporter emits a self-describing document: experiment metadata
// plus one object per point with per-scheme statistics (mean, ci95,
// min/max, switches, misses). No external JSON dependency; the emitter
// escapes strings and prints numbers round-trippably. The same escape /
// number helpers back every other JSON writer in the tree (obs/ metrics
// and Chrome traces).
//
// The parser reads any JSON text into a JsonValue tree. It exists for
// round-trip validation — tests parse the documents the writers emit
// (sweep JSON, metrics snapshots, Chrome traces) back and inspect them —
// and for tools that consume the repo's own JSON artifacts. It accepts
// standard JSON (no comments, no trailing commas) and throws
// paserta::Error with a byte offset on malformed input.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "harness/experiment.h"

namespace paserta {

struct JsonExportOptions {
  std::string experiment_id;   // e.g. "fig4a"
  std::string caption;
  std::string x_name = "x";    // "load" or "alpha"
};

void write_sweep_json(std::ostream& os, const std::vector<SweepPoint>& points,
                      const JsonExportOptions& options);

std::string sweep_to_json(const std::vector<SweepPoint>& points,
                          const JsonExportOptions& options);

/// Escapes a string for embedding between JSON double quotes (quotes,
/// backslashes, and control characters).
std::string json_escape(const std::string& s);

/// Round-trippable JSON number (12 significant digits); non-finite values
/// become "null" (JSON has no NaN/Inf).
std::string json_num(double v);

/// A parsed JSON document node. Object member order is preserved.
struct JsonValue {
  enum class Type { Null, Bool, Number, String, Array, Object };

  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return type == Type::Null; }
  bool is_object() const { return type == Type::Object; }
  bool is_array() const { return type == Type::Array; }

  /// Object member lookup; null when absent or not an object.
  const JsonValue* find(const std::string& key) const;
  /// find() that throws paserta::Error when the key is absent.
  const JsonValue& at(const std::string& key) const;
};

/// Parses one JSON document (throws paserta::Error on malformed input or
/// trailing garbage).
JsonValue json_parse(const std::string& text);

}  // namespace paserta
