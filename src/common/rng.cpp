#include "common/rng.h"

#include <cmath>

namespace paserta {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // xoshiro must not be seeded with the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
  have_spare_ = false;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> uniform in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::next_below(std::uint64_t n) {
  PASERTA_REQUIRE(n > 0, "next_below(0) is undefined");
  const std::uint64_t threshold = (0 - n) % n;  // 2^64 mod n
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

double Rng::next_gaussian() {
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  double u, v, s;
  do {
    u = 2.0 * next_double() - 1.0;
    v = 2.0 * next_double() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * mul;
  have_spare_ = true;
  return u * mul;
}

std::size_t Rng::next_discrete(std::span<const double> weights) {
  PASERTA_REQUIRE(!weights.empty(), "next_discrete needs at least one weight");
  double total = 0.0;
  for (double w : weights) {
    PASERTA_REQUIRE(w >= 0.0, "negative weight in discrete distribution");
    total += w;
  }
  PASERTA_REQUIRE(total > 0.0, "discrete distribution weights sum to zero");
  double x = next_double() * total;
  for (std::size_t i = 0; i + 1 < weights.size(); ++i) {
    if (x < weights[i]) return i;
    x -= weights[i];
  }
  return weights.size() - 1;
}

Rng Rng::fork() { return Rng(next_u64() ^ 0xA5A5A5A55A5A5A5AULL); }

std::uint64_t Rng::stream_seed(std::uint64_t seed, std::uint64_t index) {
  // Two rounds of splitmix64 over (seed, index) decorrelate the streams.
  std::uint64_t x = seed + 0x9E3779B97F4A7C15ULL * (index + 1);
  (void)splitmix64(x);
  return splitmix64(x);
}

}  // namespace paserta
