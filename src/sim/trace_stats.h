// Trace analytics: quantitative summaries of one or many simulation runs.
//
// Answers the questions behind the paper's discussion sections: how much
// time each processor spent at each DVS level, how much of the window was
// idle, how much energy went to overheads, and how the slack each task
// claimed compares to its latest start time.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/program.h"
#include "power/power_model.h"
#include "sim/engine.h"

namespace paserta {

/// Per-level execution-time residency of a run.
struct LevelResidency {
  std::size_t level = 0;
  Freq freq = 0;
  SimTime busy_time{};   // task execution at this level
  double busy_fraction = 0.0;  // of total busy time
  Energy energy = 0.0;   // busy energy at this level
};

struct TraceStats {
  /// Total task execution time across processors.
  SimTime busy_time{};
  /// Total overhead time (speed computation + transitions).
  SimTime overhead_time{};
  /// Total idle/sleep time across processors over [0, deadline].
  SimTime idle_time{};
  /// Fraction of the m x D processor-time window spent executing tasks.
  double utilization = 0.0;
  /// Residency per DVS level, ascending by level index (all levels listed).
  std::vector<LevelResidency> residency;
  /// Average of (LST_i - dispatch_i) over computation nodes: how early
  /// tasks started relative to the latest allowed start (claimed slack).
  SimTime mean_claimed_slack{};
  /// Voltage transitions.
  std::uint32_t speed_changes = 0;
  /// Executed computation nodes.
  std::uint32_t tasks_executed = 0;
  /// Energy split (same values as SimResult, repeated for convenience).
  Energy busy_energy = 0.0;
  Energy overhead_energy = 0.0;
  Energy idle_energy = 0.0;

  /// The frequency (level) that hosted the largest share of busy time.
  const LevelResidency& dominant_level() const;
};

/// Computes analytics for one run.
TraceStats analyze_trace(const Application& app, const OfflineResult& off,
                         const PowerModel& pm, const SimResult& result);

}  // namespace paserta
