// Internal representation of Program (shared by program.cpp and the text
// serializer). Not part of the public API: the layout may change.
#pragma once

#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "graph/program.h"

namespace paserta {

struct Program::Impl {
  struct BranchSeg {
    std::string name;
    std::vector<std::pair<double, Program>> alts;
  };
  struct LoopSeg {
    std::string name;
    Program body;
    std::vector<double> iter_prob;
    LoopMode mode;
  };
  using Seg = std::variant<SectionSpec, BranchSeg, LoopSeg>;

  std::vector<Seg> segs;
};

}  // namespace paserta
