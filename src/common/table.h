// Plain-text and CSV table emission for benches and examples.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace paserta {

/// Accumulates rows of string cells and renders them either as CSV
/// (machine-readable bench output) or as an aligned text table
/// (human-readable example output).
class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with fixed precision.
  static std::string num(double v, int precision = 4);

  void write_csv(std::ostream& os) const;
  void write_pretty(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }
  std::size_t cols() const { return header_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::string>& row(std::size_t i) const { return rows_.at(i); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace paserta
