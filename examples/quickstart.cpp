// Quickstart: build a small AND/OR application, run the offline analysis,
// simulate the paper's schemes once, and print what happened.
//
//   $ ./quickstart
//
// Walks through the full public API in ~80 lines: Program -> Application
// -> OfflineResult -> simulate() -> SimResult.
#include <iostream>

#include "core/offline.h"
#include "graph/dot.h"
#include "sim/engine.h"

using namespace paserta;

int main() {
  // 1. Describe the application: a prologue, a 30/70 OR branch (the
  //    paper's Figure 1b), and an epilogue. Times are WCET/ACET at f_max.
  Program fast, slow;
  fast.task("F", SimTime::from_ms(8), SimTime::from_ms(6));
  slow.task("G", SimTime::from_ms(5), SimTime::from_ms(3));

  Program prog;
  prog.task("prepare", SimTime::from_ms(4), SimTime::from_ms(2));
  prog.branch("detect", {{0.30, std::move(fast)}, {0.70, std::move(slow)}});
  prog.task("report", SimTime::from_ms(3), SimTime::from_ms(2));

  const Application app = build_application("quickstart", prog);
  std::cout << "Application '" << app.name << "': " << app.graph.size()
            << " nodes, " << app.graph.task_count() << " tasks, "
            << app.or_fork_count() << " OR fork(s)\n\n";

  // 2. Pick the platform: 2 CPUs with the Intel XScale DVS table, the
  //    paper's overhead assumptions (300 cycles + 5 us per transition).
  const PowerModel pm(LevelTable::intel_xscale());
  Overheads ovh;

  // 3. Offline phase: canonical schedules, execution orders, latest start
  //    times. Deadline = 2x the worst-case makespan (load = 0.5).
  OfflineOptions opt;
  opt.cpus = 2;
  opt.overhead_budget = ovh.worst_case_budget(pm.table());
  opt.deadline = canonical_worst_makespan(app, opt.cpus,
                                          opt.overhead_budget) * 2;
  const OfflineResult off = analyze_offline(app, opt);
  std::cout << "W (canonical worst case) = " << to_string(off.worst_makespan())
            << ", A (average case) = " << to_string(off.average_makespan())
            << ", deadline = " << to_string(off.deadline()) << "\n\n";

  // 4. Simulate one random scenario under every scheme.
  Rng rng(7);
  const RunScenario sc = draw_scenario(app.graph, rng);

  std::cout << "scheme  energy_mJ  finish     switches  deadline\n";
  double npm_energy = 0.0;
  for (Scheme s : {Scheme::NPM, Scheme::SPM, Scheme::GSS, Scheme::SS1,
                   Scheme::SS2, Scheme::AS}) {
    const SimResult r = simulate(app, off, pm, ovh, s, sc);
    if (s == Scheme::NPM) npm_energy = r.total_energy();
    std::printf("%-7s %7.3f    %-9s  %-8u  %s  (%.1f%% of NPM)\n",
                to_string(s), r.total_energy() * 1e3,
                to_string(r.finish_time).c_str(), r.speed_changes,
                r.deadline_met ? "met " : "MISS",
                100.0 * r.total_energy() / npm_energy);
  }

  // 5. Export the graph for graphviz (dot -Tpng quickstart.dot -o q.png).
  std::cout << "\nDOT dump of the task graph:\n" << to_dot(app.graph);
  return 0;
}
