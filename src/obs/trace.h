// Span tracing for the experiment pipeline.
//
// A Tracer collects timed spans — sweep, offline analysis, pool chunk,
// per-scheme simulation — sharded per worker-pool slot exactly like the
// metrics (obs/metrics.h): each slot appends to its own event vector, so
// recording takes no lock and perturbs nothing shared. The merged event
// list is read after the parallel section has joined (the pool's join is
// the happens-before edge) and exported as Chrome/Perfetto trace-event
// JSON by obs/chrome_trace.h, so a whole sweep opens in ui.perfetto.dev
// with one track per worker slot.
//
// Names are stored as const char*: callers pass string literals (or other
// pointers outliving the tracer, e.g. to_string(Scheme)) so the hot path
// never allocates per event beyond amortized vector growth. Structured
// context travels in the two integer args (point index, run index).
//
// Determinism contract: tracing is observational only. TraceSpan reads the
// clock and appends to slot-local buffers; it never touches RNG streams,
// scheduling or accumulation order, so traced and untraced sweeps produce
// bit-identical results (test_obs pins this).
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <vector>

#include "obs/metrics.h"  // kMaxShards

namespace paserta {

/// One completed span (or instant event, dur_ns < 0) on a slot's track.
struct TraceEvent {
  const char* name = "";   // literal or otherwise tracer-outliving
  int slot = 0;            // worker-pool slot = Perfetto track (tid)
  std::int64_t ts_ns = 0;  // start, relative to the tracer's epoch
  std::int64_t dur_ns = 0; // span duration; < 0 marks an instant event
  std::int64_t point = -1; // sweep-point index (-1 = n/a), exported as arg
  std::int64_t run = -1;   // run index (-1 = n/a), exported as arg
};

class Tracer {
 public:
  /// How deep the experiment harness instruments:
  ///   kChunks — sweep / offline / pool-chunk spans only (cheap, bounded
  ///             by chunk count);
  ///   kRuns   — additionally one span per (run, scheme) simulation (full
  ///             Figure-2 visibility; event count scales with runs).
  enum class Detail { kChunks, kRuns };

  explicit Tracer(Detail detail = Detail::kRuns);

  Detail detail() const { return detail_; }

  /// Nanoseconds since the tracer was constructed (steady clock, shared
  /// across threads).
  std::int64_t now_ns() const;

  /// The tracer's epoch as absolute steady-clock nanoseconds — lets
  /// records timestamped on the raw steady clock (Profiler samples) be
  /// rebased onto this tracer's timeline (obs/chrome_trace.h).
  std::int64_t epoch_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               epoch_.time_since_epoch())
        .count();
  }

  /// Appends a completed span to `slot`'s shard. Only the thread owning
  /// the slot may call this (single-writer sharding).
  void record(int slot, const char* name, std::int64_t ts_ns,
              std::int64_t dur_ns, std::int64_t point = -1,
              std::int64_t run = -1);

  /// Appends an instant event (rendered as an arrow mark in Perfetto).
  void instant(int slot, const char* name, std::int64_t point = -1);

  /// All events merged across shards, ordered by (ts_ns, slot, dur_ns
  /// descending) so enclosing spans precede their children. Call only
  /// after the recording threads have joined.
  std::vector<TraceEvent> events() const;

  std::size_t event_count() const;

 private:
  struct alignas(64) Shard {
    std::vector<TraceEvent> events;
  };
  Detail detail_;
  std::chrono::steady_clock::time_point epoch_;
  std::array<Shard, kMaxShards> shards_;
};

/// RAII span: records [construction, destruction) on the tracer. A null
/// tracer makes the whole object a no-op, so call sites stay unconditional.
class TraceSpan {
 public:
  TraceSpan(Tracer* tracer, int slot, const char* name,
            std::int64_t point = -1, std::int64_t run = -1)
      : tracer_(tracer), slot_(slot), name_(name), point_(point), run_(run),
        t0_(tracer != nullptr ? tracer->now_ns() : 0) {}

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() {
    if (tracer_ != nullptr)
      tracer_->record(slot_, name_, t0_, tracer_->now_ns() - t0_, point_,
                      run_);
  }

 private:
  Tracer* tracer_;
  int slot_;
  const char* name_;
  std::int64_t point_;
  std::int64_t run_;
  std::int64_t t0_;
};

}  // namespace paserta
