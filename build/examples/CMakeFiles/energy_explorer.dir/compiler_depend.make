# Empty compiler generated dependencies file for energy_explorer.
# This may be replaced when dependencies are built.
