// Ablation: idle-power fraction. The paper's §5.1 counter-intuitive shape
// — normalized energy *falling* as load rises at low load — is driven by
// idle consumption (5 % of P_max in the paper). Sweeping the fraction
// shows the dip appearing/disappearing.
#include "apps/atr.h"
#include "bench_util.h"

using namespace paserta;

int main(int argc, char** argv) {
  const int runs = benchutil::runs_from_args(argc, argv, 500);
  const Application atr = apps::build_atr();
  const std::vector<double> loads = sweep_range(0.1, 1.0, 0.1);

  for (double idle_fraction : {0.0, 0.01, 0.05, 0.10, 0.20}) {
    auto cfg = benchutil::paper_config(LevelTable::transmeta_tm5400(), 2, runs);
    cfg.idle_fraction = idle_fraction;
    cfg.schemes = {Scheme::SPM, Scheme::GSS, Scheme::AS};
    benchutil::emit(
        "Ablation.idle." + Table::num(idle_fraction, 2),
        "Energy vs load, ATR, 2 CPUs, Transmeta, idle fraction = " +
            Table::num(idle_fraction, 2),
        sweep_load(atr, cfg, loads), "load");
  }
  return 0;
}
