#include "graph/program.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>

#include "common/error.h"
#include "graph/program_impl.h"

namespace paserta {

// ---------------------------------------------------------------------------
// Program value type (representation in graph/program_impl.h)
// ---------------------------------------------------------------------------

Program::Program() : impl_(std::make_unique<Impl>()) {}
Program::Program(const Program& o) : impl_(std::make_unique<Impl>(*o.impl_)) {}
Program::Program(Program&& o) noexcept = default;
Program& Program::operator=(const Program& o) {
  impl_ = std::make_unique<Impl>(*o.impl_);
  return *this;
}
Program& Program::operator=(Program&& o) noexcept = default;
Program::~Program() = default;

Program& Program::section(SectionSpec s) {
  PASERTA_REQUIRE(!s.tasks.empty(), "section must contain at least one task");
  for (const auto& [from, to] : s.edges) {
    PASERTA_REQUIRE(from < s.tasks.size() && to < s.tasks.size(),
                    "section edge index out of range");
    PASERTA_REQUIRE(from != to, "section self-edge");
  }
  impl_->segs.emplace_back(std::move(s));
  return *this;
}

Program& Program::task(std::string name, SimTime wcet, SimTime acet) {
  return section(SectionSpec{{{std::move(name), wcet, acet}}, {}});
}

Program& Program::parallel(std::vector<TaskSpec> tasks) {
  return section(SectionSpec{std::move(tasks), {}});
}

Program& Program::chain(std::vector<TaskSpec> tasks) {
  SectionSpec s{std::move(tasks), {}};
  for (std::size_t i = 0; i + 1 < s.tasks.size(); ++i) s.edges.push_back({i, i + 1});
  return section(std::move(s));
}

Program& Program::branch(std::string name,
                         std::vector<std::pair<double, Program>> alternatives) {
  PASERTA_REQUIRE(!alternatives.empty(), "branch '" << name
                                                    << "' needs alternatives");
  double sum = 0.0;
  for (const auto& [p, prog] : alternatives) {
    PASERTA_REQUIRE(p > 0.0 && p <= 1.0, "branch '" << name
                                                    << "': probability " << p
                                                    << " outside (0,1]");
    sum += p;
  }
  PASERTA_REQUIRE(std::abs(sum - 1.0) < 1e-9,
                  "branch '" << name << "': probabilities sum to " << sum);
  impl_->segs.emplace_back(
      Impl::BranchSeg{std::move(name), std::move(alternatives)});
  return *this;
}

Program& Program::loop(std::string name, Program body,
                       std::vector<double> iteration_prob, LoopMode mode) {
  PASERTA_REQUIRE(!body.empty(), "loop '" << name << "' has an empty body");
  PASERTA_REQUIRE(!iteration_prob.empty(),
                  "loop '" << name << "' needs an iteration distribution");
  double sum = 0.0;
  for (double p : iteration_prob) {
    PASERTA_REQUIRE(p >= 0.0 && p <= 1.0,
                    "loop '" << name << "': probability outside [0,1]");
    sum += p;
  }
  PASERTA_REQUIRE(std::abs(sum - 1.0) < 1e-9,
                  "loop '" << name << "': iteration probabilities sum to "
                           << sum);
  // Trailing zero probabilities just lower the effective max iteration count.
  while (iteration_prob.size() > 1 && iteration_prob.back() == 0.0)
    iteration_prob.pop_back();
  PASERTA_REQUIRE(iteration_prob.back() > 0.0,
                  "loop '" << name << "': all iteration probabilities zero");
  impl_->segs.emplace_back(Impl::LoopSeg{std::move(name), std::move(body),
                                         std::move(iteration_prob), mode});
  return *this;
}

bool Program::empty() const { return impl_->segs.empty(); }
std::size_t Program::segment_count() const { return impl_->segs.size(); }

// ---------------------------------------------------------------------------
// Loop handling
// ---------------------------------------------------------------------------
namespace {

/// Serial execution-time bounds of a program (sum over a single processor):
/// used by LoopMode::Collapse, matching the paper's "treat a whole loop as
/// one task with the execution time of maximal iterations as WCET and
/// average iterations as ACET".
struct SerialBounds {
  double wcet_ps = 0.0;
  double acet_ps = 0.0;
};

SerialBounds serial_bounds(const Program& p);

SerialBounds serial_bounds_seg(const Program::Impl::Seg& seg) {
  SerialBounds b;
  if (const auto* sec = std::get_if<SectionSpec>(&seg)) {
    for (const auto& t : sec->tasks) {
      b.wcet_ps += static_cast<double>(t.wcet.ps);
      b.acet_ps += static_cast<double>(t.acet.ps);
    }
  } else if (const auto* br = std::get_if<Program::Impl::BranchSeg>(&seg)) {
    double wmax = 0.0, aexp = 0.0;
    for (const auto& [prob, prog] : br->alts) {
      const SerialBounds sb = serial_bounds(prog);
      wmax = std::max(wmax, sb.wcet_ps);
      aexp += prob * sb.acet_ps;
    }
    b.wcet_ps = wmax;
    b.acet_ps = aexp;
  } else {
    const auto& lp = std::get<Program::Impl::LoopSeg>(seg);
    const SerialBounds body = serial_bounds(lp.body);
    const auto max_iters = static_cast<double>(lp.iter_prob.size());
    double expected_iters = 0.0;
    for (std::size_t k = 0; k < lp.iter_prob.size(); ++k)
      expected_iters += lp.iter_prob[k] * static_cast<double>(k + 1);
    b.wcet_ps = max_iters * body.wcet_ps;
    b.acet_ps = expected_iters * body.acet_ps;
  }
  return b;
}

SerialBounds serial_bounds(const Program& p) {
  SerialBounds total;
  for (const auto& seg : p.impl().segs) {
    const SerialBounds sb = serial_bounds_seg(seg);
    total.wcet_ps += sb.wcet_ps;
    total.acet_ps += sb.acet_ps;
  }
  return total;
}

/// Appends `suffix` to every task name in `p`, recursively, so unrolled
/// loop iterations stay distinguishable in traces and DOT dumps.
void rename_tasks(Program::Impl& impl, const std::string& suffix);

void rename_tasks(Program& p, const std::string& suffix) {
  rename_tasks(p.impl(), suffix);
}

void rename_tasks(Program::Impl& impl, const std::string& suffix) {
  for (auto& seg : impl.segs) {
    if (auto* sec = std::get_if<SectionSpec>(&seg)) {
      for (auto& t : sec->tasks) t.name += suffix;
    } else if (auto* br = std::get_if<Program::Impl::BranchSeg>(&seg)) {
      for (auto& [prob, prog] : br->alts) rename_tasks(prog, suffix);
    } else {
      rename_tasks(std::get<Program::Impl::LoopSeg>(seg).body, suffix);
    }
  }
}

/// Desugars an unrolled loop into nested OR branches:
///   loop(body, p_1..p_K) =
///     body#1 ; Branch{ exit with P(stop|reached 1), continue -> loop tail }
/// where the exit probability after iteration j is the conditional
/// p_j / (p_j + ... + p_K). Iterations with p_j == 0 emit no branch (the
/// loop cannot stop there).
Program expand_loop(const std::string& name, const Program& body,
                    const std::vector<double>& probs, std::size_t j) {
  const std::size_t K = probs.size();
  Program out = body;  // iteration j's body copy
  if (K > 1) rename_tasks(out, "#" + std::to_string(j));
  if (j == K) return out;

  double tail_mass = 0.0;
  for (std::size_t k = j - 1; k < K; ++k) tail_mass += probs[k];
  const double q = probs[j - 1] / tail_mass;

  Program rest = expand_loop(name, body, probs, j + 1);
  const std::string bname = name + "_it" + std::to_string(j);
  if (q <= 1e-12) {
    // Cannot stop after iteration j: continue unconditionally by splicing
    // the remaining iterations' segments after this body copy.
    for (auto& seg : rest.impl().segs)
      out.impl().segs.push_back(std::move(seg));
    return out;
  }
  if (q >= 1.0 - 1e-12) return out;  // must stop after iteration j

  std::vector<std::pair<double, Program>> alts;
  alts.emplace_back(q, Program{});           // exit the loop
  alts.emplace_back(1.0 - q, std::move(rest));  // next iteration(s)
  out.branch(bname, std::move(alts));
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Flattening
// ---------------------------------------------------------------------------
namespace {

/// Entry/exit interface of a flattened fragment.
struct Flow {
  std::vector<NodeId> entries;
  std::vector<NodeId> exits;
};

class Flattener {
 public:
  explicit Flattener(AndOrGraph& g) : g_(g) {}

  Flow flatten_program(const Program::Impl& p, const std::string& suffix,
                       StructProgram& out);

 private:
  Flow flatten_section(const SectionSpec& spec, const std::string& suffix,
                       StructSegment& seg);
  Flow flatten_branch(const Program::Impl::BranchSeg& spec,
                      const std::string& suffix, StructSegment& seg);

  /// Connects `prev_exits` (exits of the previous segment) to `entries`.
  /// When both sides have several nodes, a glue AND join is appended to
  /// `prev_section` (which is non-null exactly when the previous segment was
  /// a section — branches always expose a single exit). When a single OR
  /// exit (a branch join) feeds several entries, a glue AND fork is
  /// prepended to `next_section` instead: an OR node owns exactly one
  /// successor per alternative.
  void connect(const std::vector<NodeId>& prev_exits,
               StructSegment* prev_section,
               const std::vector<NodeId>& entries,
               StructSegment* next_section);

  /// Returns a single node standing for `nodes`, inserting a glue AND join
  /// into `section` when needed.
  NodeId coalesce(const std::vector<NodeId>& nodes, StructSegment* section,
                  const std::string& glue_name, bool as_join);

  AndOrGraph& g_;
  int glue_counter_ = 0;
};

void Flattener::connect(const std::vector<NodeId>& prev_exits,
                        StructSegment* prev_section,
                        const std::vector<NodeId>& entries,
                        StructSegment* next_section) {
  if (prev_exits.empty()) return;
  if (prev_exits.size() == 1) {
    if (entries.size() > 1 &&
        g_.node(prev_exits[0]).kind == NodeKind::OrNode) {
      // OR join -> parallel entries: fan out through a glue AND fork owned
      // by the following section.
      PASERTA_ASSERT(next_section != nullptr &&
                         next_section->kind == StructSegment::Kind::Section,
                     "multi-entry fragment after an OR join without an "
                     "owning section");
      const NodeId fork =
          g_.add_and("__seqf" + std::to_string(glue_counter_++));
      g_.add_edge(prev_exits[0], fork);
      for (NodeId e : entries) g_.add_edge(fork, e);
      next_section->members.insert(next_section->members.begin(), fork);
      return;
    }
    for (NodeId e : entries) g_.add_edge(prev_exits[0], e);
    return;
  }
  // A single non-OR entry can absorb the fan-in itself (AND semantics).
  // An OR entry cannot — it would fire on the *first* finishing
  // predecessor — so it gets a glue AND join like the many-entries case.
  if (entries.size() == 1 &&
      g_.node(entries[0]).kind != NodeKind::OrNode) {
    for (NodeId p : prev_exits) g_.add_edge(p, entries[0]);
    return;
  }
  const NodeId j = coalesce(prev_exits, prev_section, "seq", true);
  for (NodeId e : entries) g_.add_edge(j, e);
}

NodeId Flattener::coalesce(const std::vector<NodeId>& nodes,
                           StructSegment* section, const std::string& glue_name,
                           bool as_join) {
  PASERTA_ASSERT(!nodes.empty(), "coalesce of empty node set");
  if (nodes.size() == 1) return nodes[0];
  PASERTA_ASSERT(section != nullptr && section->kind == StructSegment::Kind::Section,
                 "multi-node fragment boundary without an owning section");
  const NodeId glue =
      g_.add_and("__" + glue_name + std::to_string(glue_counter_++));
  if (as_join) {
    for (NodeId n : nodes) g_.add_edge(n, glue);
  } else {
    for (NodeId n : nodes) g_.add_edge(glue, n);
  }
  section->members.push_back(glue);
  return glue;
}

Flow Flattener::flatten_section(const SectionSpec& spec,
                                const std::string& suffix, StructSegment& seg) {
  seg.kind = StructSegment::Kind::Section;
  std::vector<NodeId> ids;
  ids.reserve(spec.tasks.size());
  for (const auto& t : spec.tasks)
    ids.push_back(g_.add_task(t.name + suffix, t.wcet, t.acet));
  for (const auto& [from, to] : spec.edges) g_.add_edge(ids[from], ids[to]);
  seg.members = ids;

  Flow flow;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    bool has_intra_pred = false, has_intra_succ = false;
    for (const auto& [from, to] : spec.edges) {
      if (to == i) has_intra_pred = true;
      if (from == i) has_intra_succ = true;
    }
    if (!has_intra_pred) flow.entries.push_back(ids[i]);
    if (!has_intra_succ) flow.exits.push_back(ids[i]);
  }
  return flow;
}

Flow Flattener::flatten_branch(const Program::Impl::BranchSeg& spec,
                               const std::string& suffix, StructSegment& seg) {
  seg.kind = StructSegment::Kind::Branch;
  seg.fork = g_.add_or(spec.name + suffix + "_fork");
  seg.join = g_.add_or(spec.name + suffix + "_join");

  for (std::size_t a = 0; a < spec.alts.size(); ++a) {
    const auto& [prob, prog] = spec.alts[a];
    StructProgram sub;
    NodeId entry, exit;
    if (prog.empty()) {
      // A skipped path: one pass-through dummy carries the EO slot.
      const NodeId skip = g_.add_and("__skip" + std::to_string(glue_counter_++));
      StructSegment s;
      s.kind = StructSegment::Kind::Section;
      s.members = {skip};
      sub.segments.push_back(std::move(s));
      entry = exit = skip;
    } else {
      Flow flow = flatten_program(prog.impl(), suffix, sub);
      // The OR fork needs a unique successor per alternative; prepend a glue
      // AND fork if the alternative starts with several parallel entries.
      if (flow.entries.size() > 1) {
        StructSegment* first = &sub.segments.front();
        PASERTA_ASSERT(first->kind == StructSegment::Kind::Section,
                       "multi-entry alternative must start with a section");
        entry = coalesce(flow.entries, first, "alt_in", /*as_join=*/false);
      } else {
        entry = flow.entries[0];
      }
      exit = coalesce(flow.exits, &sub.segments.back(), "alt_out",
                      /*as_join=*/true);
    }
    g_.add_or_edge(seg.fork, entry, prob);
    g_.add_edge(exit, seg.join);
    seg.alt_prob.push_back(prob);
    seg.alternatives.push_back(std::move(sub));
  }

  return Flow{{seg.fork}, {seg.join}};
}

Flow Flattener::flatten_program(const Program::Impl& p,
                                const std::string& suffix, StructProgram& out) {
  PASERTA_REQUIRE(!p.segs.empty(), "cannot flatten an empty program");

  Flow program_flow;
  std::vector<NodeId> prev_exits;
  // Index (not pointer: out.segments reallocates) of the section owning any
  // glue AND join needed to fan in the previous segment's exits; -1 when the
  // previous segment exposes a single exit (branches, starts of programs).
  std::ptrdiff_t prev_section_idx = -1;
  const auto prev_section = [&]() -> StructSegment* {
    return prev_section_idx >= 0
               ? &out.segments[static_cast<std::size_t>(prev_section_idx)]
               : nullptr;
  };

  for (std::size_t si = 0; si < p.segs.size(); ++si) {
    const auto& seg_spec = p.segs[si];

    // Loops are desugared into sections+branches, then flattened inline so
    // their segments land at this nesting level.
    if (const auto* lp = std::get_if<Program::Impl::LoopSeg>(&seg_spec)) {
      Program expanded;
      if (lp->mode == LoopMode::Collapse) {
        const SerialBounds body = serial_bounds(lp->body);
        const auto K = static_cast<double>(lp->iter_prob.size());
        double expected_iters = 0.0;
        for (std::size_t k = 0; k < lp->iter_prob.size(); ++k)
          expected_iters += lp->iter_prob[k] * static_cast<double>(k + 1);
        const SimTime wcet{static_cast<std::int64_t>(K * body.wcet_ps + 0.5)};
        const SimTime acet{
            static_cast<std::int64_t>(expected_iters * body.acet_ps + 0.5)};
        expanded.task(lp->name, wcet,
                      std::min(acet == SimTime::zero() ? SimTime{1} : acet, wcet));
      } else {
        expanded = expand_loop(lp->name, lp->body, lp->iter_prob, 1);
      }
      // Flatten the expansion as a nested program and splice its segments.
      StructProgram spliced;
      Flow flow = flatten_program(expanded.impl(), suffix, spliced);
      const std::size_t splice_start = out.segments.size();
      for (auto& s : spliced.segments) out.segments.push_back(std::move(s));
      StructSegment* first_spliced =
          out.segments[splice_start].kind == StructSegment::Kind::Section
              ? &out.segments[splice_start]
              : nullptr;
      connect(prev_exits, prev_section(), flow.entries, first_spliced);
      if (si == 0) program_flow.entries = flow.entries;
      prev_exits = flow.exits;
      prev_section_idx =
          out.segments.back().kind == StructSegment::Kind::Section
              ? static_cast<std::ptrdiff_t>(out.segments.size()) - 1
              : -1;
      continue;
    }

    out.segments.emplace_back();
    Flow flow;
    if (const auto* sec = std::get_if<SectionSpec>(&seg_spec)) {
      flow = flatten_section(*sec, suffix, out.segments.back());
      connect(prev_exits, prev_section(), flow.entries, &out.segments.back());
      prev_section_idx = static_cast<std::ptrdiff_t>(out.segments.size()) - 1;
    } else {
      const auto& br = std::get<Program::Impl::BranchSeg>(seg_spec);
      flow = flatten_branch(br, suffix, out.segments.back());
      connect(prev_exits, prev_section(), flow.entries, nullptr);
      prev_section_idx = -1;
    }
    if (si == 0) program_flow.entries = flow.entries;
    prev_exits = flow.exits;
  }

  program_flow.exits = prev_exits;
  return program_flow;
}

}  // namespace

std::size_t Application::or_fork_count() const {
  std::size_t n = 0;
  for (NodeId id : graph.all_nodes())
    if (graph.node(id).is_or_fork()) ++n;
  return n;
}

Application build_application(std::string name, const Program& program) {
  PASERTA_REQUIRE(!program.empty(),
                  "application '" << name << "' has no segments");
  Application app;
  app.name = std::move(name);
  Flattener fl(app.graph);
  fl.flatten_program(program.impl(), "", app.structure);
  app.graph.validate();
  return app;
}

}  // namespace paserta
