# Empty dependencies file for test_parallel_harness.
# This may be replaced when dependencies are built.
