file(REMOVE_RECURSE
  "CMakeFiles/adaptive_branching.dir/adaptive_branching.cpp.o"
  "CMakeFiles/adaptive_branching.dir/adaptive_branching.cpp.o.d"
  "adaptive_branching"
  "adaptive_branching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_branching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
