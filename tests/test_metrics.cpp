// Tests for graph metrics and the shipped workload library.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <fstream>

#include "apps/atr.h"
#include "apps/random_app.h"
#include "apps/synthetic.h"
#include "core/offline.h"
#include "graph/metrics.h"
#include "graph/text_format.h"
#include "sim/engine.h"

namespace paserta {
namespace {

SimTime ms(double v) { return SimTime::from_ms(v); }
TaskSpec t(const char* n, double w, double a) {
  return TaskSpec{n, ms(w), ms(a)};
}

TEST(Metrics, ChainIsSerial) {
  Program p;
  p.chain({t("a", 4, 2), t("b", 6, 3)});
  const auto m = compute_metrics(build_application("c", p));
  EXPECT_EQ(m.tasks, 2u);
  EXPECT_EQ(m.critical_path, ms(10));
  EXPECT_EQ(m.max_work, ms(10));
  EXPECT_EQ(m.expected_work, ms(5));
  EXPECT_DOUBLE_EQ(m.path_count, 1.0);
  EXPECT_DOUBLE_EQ(m.parallelism, 1.0);
}

TEST(Metrics, ParallelSectionWidth) {
  Program p;
  p.parallel({t("a", 4, 2), t("b", 4, 2), t("c", 4, 2), t("d", 4, 2)});
  const auto m = compute_metrics(build_application("p", p));
  EXPECT_EQ(m.critical_path, ms(4));
  EXPECT_EQ(m.max_work, ms(16));
  EXPECT_DOUBLE_EQ(m.parallelism, 4.0);
}

TEST(Metrics, BranchPathsAndExpectation) {
  Program x, y;
  x.task("x", ms(4), ms(2));
  y.task("y", ms(8), ms(6));
  Program p;
  p.task("pre", ms(2), ms(1));
  p.branch("o", {{0.25, std::move(x)}, {0.75, std::move(y)}});
  const auto m = compute_metrics(build_application("b", p));
  EXPECT_DOUBLE_EQ(m.path_count, 2.0);
  EXPECT_EQ(m.or_forks, 1u);
  EXPECT_EQ(m.critical_path, ms(10));  // pre + y
  EXPECT_EQ(m.max_work, ms(10));
  // expected = 1 + 0.25*2 + 0.75*6 = 6.
  EXPECT_EQ(m.expected_work, ms(6));
}

TEST(Metrics, SequentialBranchesMultiplyPaths) {
  auto two_way = [] {
    Program a, b;
    a.task("a", ms(1), ms(1));
    b.task("b", ms(2), ms(1));
    return std::pair{std::move(a), std::move(b)};
  };
  Program p;
  auto [a1, b1] = two_way();
  p.branch("o1", {{0.5, std::move(a1)}, {0.5, std::move(b1)}});
  auto [a2, b2] = two_way();
  p.branch("o2", {{0.5, std::move(a2)}, {0.5, std::move(b2)}});
  const auto m = compute_metrics(build_application("seq", p));
  EXPECT_DOUBLE_EQ(m.path_count, 4.0);
}

TEST(Metrics, LoopUnrollCountsIterationPaths) {
  Program body;
  body.task("b", ms(1), ms(1));
  Program p;
  p.loop("L", std::move(body), {0.25, 0.25, 0.5});
  const auto m = compute_metrics(build_application("l", p));
  // 3 possible iteration counts -> 3 paths.
  EXPECT_DOUBLE_EQ(m.path_count, 3.0);
  EXPECT_EQ(m.critical_path, ms(3));
}

TEST(Metrics, SyntheticConsistentWithOffline) {
  const Application app = apps::build_synthetic();
  const auto m = compute_metrics(app);
  // On unbounded processors, the canonical makespan equals the critical
  // path.
  OfflineOptions o;
  o.cpus = 64;
  o.deadline = SimTime::from_sec(1);
  const OfflineResult off = analyze_offline(app, o);
  EXPECT_EQ(m.critical_path, off.worst_makespan());
  // On one processor, it equals the max-path work.
  o.cpus = 1;
  EXPECT_EQ(m.max_work, analyze_offline(app, o).worst_makespan());
  EXPECT_GE(m.parallelism, 1.0);
}

TEST(Metrics, RandomAppsSane) {
  apps::RandomAppConfig cfg;
  for (std::uint64_t seed = 50; seed < 70; ++seed) {
    Rng rng(seed);
    const Application app = apps::random_application(rng, cfg);
    const auto m = compute_metrics(app);
    EXPECT_EQ(m.nodes, app.graph.size());
    EXPECT_GE(m.path_count, 1.0);
    EXPECT_GE(m.parallelism, 1.0 - 1e-12);
    EXPECT_LE(m.critical_path, m.max_work);
    EXPECT_LE(m.expected_work, m.max_work);
    EXPECT_GT(m.critical_path, SimTime::zero());
  }
}

// ------------------------------------------------------- workload library

std::vector<std::filesystem::path> workload_files() {
  std::vector<std::filesystem::path> out;
#ifdef PASERTA_SOURCE_DIR
  const std::filesystem::path dir =
      std::filesystem::path(PASERTA_SOURCE_DIR) / "examples" / "workloads";
#else
  const std::filesystem::path dir = "examples/workloads";
#endif
  if (!std::filesystem::exists(dir)) return out;  // run from repo root
  for (const auto& e : std::filesystem::directory_iterator(dir))
    if (e.path().extension() == ".workload") out.push_back(e.path());
  std::sort(out.begin(), out.end());
  return out;
}

TEST(WorkloadLibrary, AllFilesLoadValidateAndSchedule) {
  const auto files = workload_files();
  if (files.empty()) GTEST_SKIP() << "run from the repository root";
  EXPECT_GE(files.size(), 3u);
  for (const auto& path : files) {
    SCOPED_TRACE(path.string());
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    const Application app = load_application(in);
    EXPECT_NO_THROW(app.graph.validate());
    EXPECT_GE(app.graph.task_count(), 3u);

    // Every shipped workload must run deadline-clean under every scheme.
    const PowerModel pm(LevelTable::intel_xscale());
    Overheads ovh;
    OfflineOptions o;
    o.cpus = 2;
    o.overhead_budget = ovh.worst_case_budget(pm.table());
    o.deadline = canonical_worst_makespan(app, 2, o.overhead_budget);
    const OfflineResult off = analyze_offline(app, o);
    ASSERT_TRUE(off.feasible());
    Rng rng(1);
    const RunScenario sc = draw_scenario(app.graph, rng);
    for (Scheme s : {Scheme::NPM, Scheme::SPM, Scheme::GSS, Scheme::SS1,
                     Scheme::SS2, Scheme::AS}) {
      EXPECT_TRUE(simulate(app, off, pm, ovh, s, sc).deadline_met)
          << to_string(s);
    }
  }
}

TEST(WorkloadLibrary, MetricsDifferentiateWorkloads) {
  const auto files = workload_files();
  if (files.empty()) GTEST_SKIP() << "run from the repository root";
  // The shipped workloads span distinct structure classes: at least two
  // distinct path counts and parallelism above 1 somewhere.
  std::set<double> paths;
  double max_par = 0.0;
  for (const auto& path : files) {
    std::ifstream in(path);
    const auto m = compute_metrics(load_application(in));
    paths.insert(m.path_count);
    max_par = std::max(max_par, m.parallelism);
  }
  EXPECT_GE(paths.size(), 2u);
  EXPECT_GT(max_par, 1.0);
}

}  // namespace
}  // namespace paserta
