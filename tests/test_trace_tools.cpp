// Tests for the trace tooling: Gantt rendering and trace analytics.
#include <gtest/gtest.h>

#include <numeric>

#include "apps/synthetic.h"
#include "common/error.h"
#include "core/offline.h"
#include "sim/gantt.h"
#include "sim/trace_stats.h"

namespace paserta {
namespace {

SimTime ms(double v) { return SimTime::from_ms(v); }

struct Fixture {
  Application app;
  PowerModel pm;
  Overheads ovh;
  OfflineResult off;
  RunScenario sc;
  SimResult result;
};

Fixture run_simple(Scheme scheme) {
  Program p;
  p.section(SectionSpec{{{"Alpha", ms(8), ms(4)},
                         {"Beta", ms(4), ms(2)},
                         {"Gamma", ms(4), ms(2)}},
                        {}});
  Application app = build_application("g", p);
  PowerModel pm(LevelTable::intel_xscale());
  Overheads ovh;
  ovh.speed_compute_cycles = 0;
  ovh.speed_change_time = SimTime::zero();
  OfflineOptions o;
  o.cpus = 2;
  o.deadline = ms(16);
  OfflineResult off = analyze_offline(app, o);
  RunScenario sc = worst_case_scenario(app.graph);
  SimResult r = simulate(app, off, pm, ovh, scheme, sc);
  return Fixture{std::move(app), std::move(pm), ovh, std::move(off),
                 std::move(sc), std::move(r)};
}

// ------------------------------------------------------------------ gantt

TEST(Gantt, RendersLanesAndDeadline) {
  const Fixture f = run_simple(Scheme::GSS);
  const std::string g = gantt_to_string(f.app, f.off, f.pm, f.result);
  EXPECT_NE(g.find("cpu0 |"), std::string::npos);
  EXPECT_NE(g.find("cpu1 |"), std::string::npos);
  EXPECT_NE(g.find("  f  |"), std::string::npos);  // frequency ribbon
  // Task initials appear.
  EXPECT_NE(g.find('A'), std::string::npos);
  EXPECT_NE(g.find('B'), std::string::npos);
  EXPECT_NE(g.find('G'), std::string::npos);
  EXPECT_NE(g.find("deadline"), std::string::npos);
}

TEST(Gantt, SwitchMarkersForDynamicSchemes) {
  const Fixture f = run_simple(Scheme::GSS);
  ASSERT_GT(f.result.speed_changes, 0u);
  const std::string g = gantt_to_string(f.app, f.off, f.pm, f.result);
  EXPECT_NE(g.find('!'), std::string::npos);
}

TEST(Gantt, OptionsRespected) {
  const Fixture f = run_simple(Scheme::NPM);
  GanttOptions opt;
  opt.frequency_ribbon = false;
  opt.width = 40;
  const std::string g = gantt_to_string(f.app, f.off, f.pm, f.result, opt);
  EXPECT_EQ(g.find("  f  |"), std::string::npos);
  EXPECT_THROW(
      (void)gantt_to_string(f.app, f.off, f.pm, f.result, GanttOptions{8}),
      Error);
}

TEST(Gantt, OrNodesMarked) {
  const Application app = apps::build_synthetic();
  const PowerModel pm(LevelTable::intel_xscale());
  Overheads ovh;
  OfflineOptions o;
  o.cpus = 2;
  o.deadline = ms(100);
  o.overhead_budget = ovh.worst_case_budget(pm.table());
  const OfflineResult off = analyze_offline(app, o);
  Rng rng(4);
  const RunScenario sc = draw_scenario(app.graph, rng);
  const SimResult r = simulate(app, off, pm, ovh, Scheme::GSS, sc);
  const std::string g = gantt_to_string(app, off, pm, r);
  EXPECT_NE(g.find('o'), std::string::npos);  // OR nodes
}

// ------------------------------------------------------------ trace stats

TEST(TraceStats, BusyTimeAndTaskCount) {
  const Fixture f = run_simple(Scheme::NPM);
  const TraceStats st = analyze_trace(f.app, f.off, f.pm, f.result);
  EXPECT_EQ(st.tasks_executed, 3u);
  // NPM at f_max: busy time equals summed WCETs (worst-case scenario).
  EXPECT_EQ(st.busy_time, ms(16));
  EXPECT_EQ(st.overhead_time, SimTime::zero());
  EXPECT_EQ(st.speed_changes, 0u);
  // All residency at the top level.
  EXPECT_DOUBLE_EQ(st.residency.back().busy_fraction, 1.0);
  EXPECT_EQ(st.residency.back().busy_time, ms(16));
  for (std::size_t i = 0; i + 1 < st.residency.size(); ++i)
    EXPECT_EQ(st.residency[i].busy_time, SimTime::zero());
  EXPECT_EQ(st.dominant_level().level, f.pm.table().size() - 1);
}

TEST(TraceStats, UtilizationAgainstWindow) {
  const Fixture f = run_simple(Scheme::NPM);
  const TraceStats st = analyze_trace(f.app, f.off, f.pm, f.result);
  // Window = 2 cpus x 16ms = 32ms; busy = 16ms.
  EXPECT_DOUBLE_EQ(st.utilization, 0.5);
  EXPECT_EQ(st.idle_time, ms(16));
}

TEST(TraceStats, ResidencyFractionsSumToOne) {
  const Fixture f = run_simple(Scheme::GSS);
  const TraceStats st = analyze_trace(f.app, f.off, f.pm, f.result);
  const double total = std::accumulate(
      st.residency.begin(), st.residency.end(), 0.0,
      [](double acc, const LevelResidency& r) { return acc + r.busy_fraction; });
  EXPECT_NEAR(total, 1.0, 1e-12);
  // GSS slowed down: the dominant level is below the top.
  EXPECT_LT(st.dominant_level().level, f.pm.table().size() - 1);
}

TEST(TraceStats, EnergyMatchesSimResult) {
  const Fixture f = run_simple(Scheme::GSS);
  const TraceStats st = analyze_trace(f.app, f.off, f.pm, f.result);
  const double resid_energy = std::accumulate(
      st.residency.begin(), st.residency.end(), 0.0,
      [](double acc, const LevelResidency& r) { return acc + r.energy; });
  EXPECT_NEAR(resid_energy, f.result.busy_energy, 1e-12);
  EXPECT_DOUBLE_EQ(st.busy_energy, f.result.busy_energy);
  EXPECT_DOUBLE_EQ(st.idle_energy, f.result.idle_energy);
}

TEST(TraceStats, ClaimedSlackPositiveWithStaticSlack) {
  const Fixture f = run_simple(Scheme::GSS);
  const TraceStats st = analyze_trace(f.app, f.off, f.pm, f.result);
  // Tasks dispatched well before their latest start times.
  EXPECT_GT(st.mean_claimed_slack, SimTime::zero());
}

TEST(TraceStats, OverheadTimeTracked) {
  Program p;
  p.chain({{"a", ms(5), ms(5)}, {"b", ms(5), ms(5)}});
  const Application app = build_application("ovh", p);
  const PowerModel pm(LevelTable::intel_xscale());
  Overheads ovh;  // 300 cycles + 5us
  OfflineOptions o;
  o.cpus = 1;
  o.deadline = ms(30);
  o.overhead_budget = ovh.worst_case_budget(pm.table());
  const OfflineResult off = analyze_offline(app, o);
  const RunScenario sc = worst_case_scenario(app.graph);
  const SimResult r = simulate(app, off, pm, ovh, Scheme::GSS, sc);
  const TraceStats st = analyze_trace(app, off, pm, r);
  EXPECT_GT(st.overhead_time, SimTime::zero());
}

}  // namespace
}  // namespace paserta
