// Slack sharing for INDEPENDENT task sets — the paper's predecessor
// algorithm (ref [20], Zhu/Melhem/Childers RTSS'01), which §3 extends to
// AND/OR graphs.
//
// A set of independent hard-real-time tasks shares a global queue in
// canonical (longest-task-first) order on m identical DVS processors. Each
// processor carries an *estimated end time* (EET). When a processor fetches
// the next task at time t it adopts the MINIMUM EET among all processors
// (swapping EETs with the processor that held it — this is the slack
// sharing: a processor that finished early inherits the earliest canonical
// completion slot, and the multiset of EETs is invariant), then allocates
//     EET_self := min_EET + wcet_i,
//     speed    := f_max * wcet_i / (EET_self - t - overheads).
// Because the EET multiset always equals the canonical completion profile,
// max EET never exceeds the canonical makespan and the deadline holds.
//
// The module also provides the no-sharing variant (each processor may only
// reclaim slack from its own canonical assignment) as the baseline [20]
// compares against, plus NPM/SPM.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "power/power_model.h"
#include "sim/engine.h"

namespace paserta {

struct IndependentTask {
  std::string name;
  SimTime wcet;
  SimTime acet;
};

struct IndependentTaskSet {
  std::vector<IndependentTask> tasks;

  SimTime total_wcet() const;
  SimTime total_acet() const;
};

enum class IndependentScheme {
  NPM,        // every task at f_max
  SPM,        // one static level from canonical makespan / deadline
  GreedyNoShare,  // per-processor greedy reclamation, canonical assignment
  GreedyShare,    // EET-swap slack sharing (the [20] algorithm)
};

const char* to_string(IndependentScheme s);

/// Canonical LTF schedule of the set at f_max with WCETs.
struct IndependentCanonical {
  SimTime makespan{};
  /// Task indices in canonical dispatch order.
  std::vector<std::size_t> order;
  /// Canonical processor and finish time per task (by task index).
  std::vector<int> cpu;
  std::vector<SimTime> start;
  std::vector<SimTime> finish;
};

IndependentCanonical canonical_independent(const IndependentTaskSet& set,
                                           int cpus);

/// Result of one simulated run (energy accounted over [0, deadline]).
struct IndependentResult {
  Energy busy_energy = 0.0;
  Energy overhead_energy = 0.0;
  Energy idle_energy = 0.0;
  SimTime finish_time{};
  std::uint32_t speed_changes = 0;
  bool deadline_met = false;

  Energy total_energy() const {
    return busy_energy + overhead_energy + idle_energy;
  }
};

/// Simulates one run; `actual[i]` is task i's actual time at f_max,
/// in (0, wcet_i].
IndependentResult simulate_independent(const IndependentTaskSet& set,
                                       int cpus, SimTime deadline,
                                       const PowerModel& pm,
                                       const Overheads& overheads,
                                       IndependentScheme scheme,
                                       const std::vector<SimTime>& actual);

/// Draws actual times exactly like the AND/OR scenario generator.
std::vector<SimTime> draw_independent_actuals(const IndependentTaskSet& set,
                                              Rng& rng);

/// Random independent task set (WCETs uniform in [wcet_min, wcet_max],
/// per-task alpha uniform in [alpha_min, alpha_max]).
IndependentTaskSet random_independent_set(Rng& rng, std::size_t n,
                                          SimTime wcet_min, SimTime wcet_max,
                                          double alpha_min, double alpha_max);

}  // namespace paserta
