// Batched SoA simulation engine: B scenarios of one compiled graph in
// lockstep (DESIGN.md §14).
//
// The Monte-Carlo harness evaluates thousands of independent runs of the
// *same* (application, offline result, power model, scheme) tuple; the
// scalar engine pays the whole per-run fixed cost — policy construction
// and reset, input validation, virtual policy dispatch, per-level
// overhead-table derivation — once per simulation. simulate_batch pays it
// once per *batch* and keeps all per-run mutable state in lane-major
// structure-of-arrays slabs (64-byte aligned, one contiguous row per
// lane): NUP counters, ready-queue keys, outstanding-completion keys,
// per-CPU levels and busy clocks, and the energy-attribution ledger. The
// dispatch loop walks the lanes in lockstep — one completion event per
// active lane per round — with a compacted active-lane list, so divergent
// lanes (different OR outcomes, staggered completions) simply retire from
// the list early; shared read-only tables (EO/EET/WCET/CSR successors,
// level powers, the precomputed per-level compute-overhead table) stay hot
// across every lane.
//
// The scalar engine remains the oracle: simulate_batch reproduces
// SimResult energies, degenerate flags, counters and the attribution
// ledger run-for-run, bit-identical. Per-lane work is the identical
// integer arithmetic in the identical order; the only floating-point —
// the end-of-run ledger fold — is the same canonical fold over the same
// sorted touched-entry lists. Scenarios arrive through a ScenarioBatch
// slab filled lane-by-lane from each run's own Rng stream, so the RNG
// contract is untouched. Policies are devirtualized per scheme class
// (static / GSS / static-speculation / adaptive); their parameters are
// extracted from a freshly reset real policy object, and the adaptive
// floor is per-lane state updated by the same OR-fire rule.
#pragma once

#include <cstdint>
#include <vector>

#include "common/aligned.h"
#include "core/offline.h"
#include "core/policy.h"
#include "graph/program.h"
#include "obs/metrics.h"
#include "power/power_model.h"
#include "sim/engine.h"
#include "sim/sampler.h"

namespace paserta {

/// Batch-wide simulation knobs (the batched analogue of SimOptions).
struct BatchSimOptions {
  /// Record one TaskRecord per dispatched node into each lane's
  /// SimResult::trace (audit mode needs per-run traces).
  bool record_trace = false;
  /// Per-lane self-audit: assert the attribution ledger's integer
  /// time-conservation invariant at every lane's end of run.
  bool audit = false;
  /// Per-lane telemetry cells, an array of at least `lanes` entries: lane
  /// l's counters and ledger are exported into lane_cells[l] exactly as
  /// the scalar engine exports into SimOptions::counters. Null = see
  /// shared_cell.
  SimCounters* lane_cells = nullptr;
  /// Shared telemetry cell used when lane_cells is null: all lanes export
  /// into it in lane order (integer adds — totals match per-run export).
  /// Null = counting off.
  SimCounters* shared_cell = nullptr;
  /// Phase profiler (obs/prof.h): when set, simulate_batch charges its
  /// per-batch setup (slab reset, derived tables, policy devirtualization)
  /// to ph_setup and the lockstep dispatch loop to ph_drain, on `slot`.
  /// Write-only like every obs hook — outputs are bit-identical with it
  /// on or off. Null = two pointer tests per batch.
  Profiler* prof = nullptr;
  int ph_setup = -1;
  int ph_drain = -1;
  int slot = 0;
};

/// Reusable lane-major SoA state of simulate_batch. All mutable per-lane
/// arrays live here as contiguous slabs with cache-line-aligned rows;
/// buffers grow to the high-water mark and are reused. Treat the members
/// as engine-internal: construct once per worker and pass to
/// simulate_batch.
class BatchWorkspace {
 public:
  BatchWorkspace() = default;

  // --- Everything below is internal to sim/batch_engine.cpp. ---

  /// Grows the slabs for `lanes` lanes of an `nodes`-node graph on `cpus`
  /// processors and `levels` voltage levels. Zeroes the ledger slabs when
  /// the geometry changes (rows remap under new strides, so stale values
  /// from a previous geometry must not survive).
  void ensure(std::size_t lanes, std::size_t nodes, std::size_t cpus,
              std::size_t levels, bool trace);

  template <typename T>
  using Slab = std::vector<T, CacheAlignedAlloc<T>>;

  // Geometry of the current slabs.
  std::size_t lanes = 0, nodes = 0, cpus = 0, levels = 0;
  std::size_t sn = 0;   // per-lane stride of node-indexed u32/u64 rows
  std::size_t sc = 0;   // per-lane stride of cpu-indexed rows
  std::size_t sl = 0;   // per-lane stride of level-indexed rows
  std::size_t sll = 0;  // per-lane stride of (level x level) rows
  std::size_t sw = 0;   // per-lane stride of ready-bitmap words

  // Per-lane node state. The ready set is a bitmap over execution order:
  // on any single run path EO values are unique (EO ranges only overlap
  // across mutually exclusive OR alternatives), so "lowest set bit" is
  // exactly the scalar engine's sorted-key pop order, with O(1) insert.
  // ready_node maps a set bit's EO back to its node id; entries are
  // written at insert time, so a stale value is never read.
  Slab<std::uint32_t> nup;          // [lanes][sn]
  Slab<std::uint64_t> ready_words;  // [lanes][sw] EO-indexed bitmap
  Slab<std::uint32_t> ready_node;   // [lanes][sn] EO -> node id
  // Outstanding completions (at most one per CPU), parallel key/payload.
  Slab<std::int64_t> ev_finish;  // [lanes][sc]
  Slab<std::uint64_t> ev_seq;    // [lanes][sc]
  Slab<std::uint64_t> ev_meta;   // [lanes][sc]
  // Per-CPU state.
  Slab<std::uint32_t> cpu_level;   // [lanes][sc]
  Slab<std::uint8_t> cpu_sleep;    // [lanes][sc]
  Slab<std::int64_t> cpu_busy;     // [lanes][sc]
  // Attribution ledger.
  Slab<std::uint64_t> busy_ps;     // [lanes][sl]
  Slab<std::uint64_t> compute_ps;  // [lanes][sl]
  Slab<std::uint64_t> transitions; // [lanes][sll]
  Slab<std::uint32_t> touched_levels;       // [lanes][sl]
  Slab<std::uint8_t> level_touched;         // [lanes][sl]
  Slab<std::uint32_t> touched_transitions;  // [lanes][sll]
  // Per-lane scalar state, packed so one event turn touches one cache
  // line instead of a dozen slabs.
  struct alignas(64) LaneScalars {
    std::uint32_t ready_n = 0;
    std::uint32_t ev_n = 0;
    std::uint32_t neo = 0;
    std::uint32_t activated = 0;
    std::uint32_t completed = 0;
    std::uint32_t dispatched = 0;
    std::uint32_t speed_changes = 0;
    std::uint32_t touched_levels_n = 0;
    std::uint32_t touched_trans_n = 0;
    std::uint32_t as_floor_lvl = 0;  // adaptive floor as a level index
    std::uint64_t seq = 0;
    std::int64_t last_activity = 0;
  };
  Slab<LaneScalars> lane;      // [lanes]
  Slab<std::uint32_t> active;  // compacted active-lane list
  // Per-lane traces (only sized when tracing).
  std::vector<std::vector<TaskRecord>> traces;

  // --- Batch-shared derived tables, cached across simulate_batch calls
  // on the identity of their inputs (same discipline as SimWorkspace's
  // dt_compute cache). ---

  // Per-level speed-computation overhead (engine_core::build_compute_table).
  std::vector<SimTime> dt_compute;
  const void* dt_key = nullptr;
  std::uint32_t dt_cycles = 0;
  // Exact division-free duration scaling: for each level,
  // ceil(actual * f_max / freq) via a 2^64 reciprocal plus a <=2-step
  // fixup — the identical quotient of scale_time's u64 fast path.
  struct LevelDiv {
    std::uint64_t magic = 0;  // floor(2^64 / freq)
    std::uint64_t den1 = 0;   // freq - 1 (ceil rounding addend)
    Freq freq = 0;
  };
  std::vector<LevelDiv> level_div;
  // Per-node f_max * WCET products for the multiply-compare level walk
  // (u64; fwork_fits false falls every dispatch back to required_freq).
  // Rebuilt per simulate_batch call (cheap, and they depend on the
  // OfflineResult, whose address may be reused across points).
  std::vector<std::uint64_t> fwork;
  bool fwork_fits = true;
  std::uint64_t avail_limit = 0;  // max avail with freq * avail in u64
  std::uint64_t actual_limit = 0; // max actual with actual*f_max+den-1 in u64
  // Initial ready-set templates (source nodes, copied per lane) and the
  // AS remaining-work tables.
  std::vector<std::uint64_t> ready_init_words;
  std::vector<std::uint32_t> ready_init_nodes;
  std::vector<SimTime> as_rem_after;   // per-node E[remaining] (AS)
  std::vector<const SimTime*> as_alt;  // per-node fork alt table (AS)
};

/// Simulates `lanes` scenarios of one scheme in lockstep, writing one
/// SimResult per lane into `results` (an array of at least `lanes`
/// entries). Lane l consumes row l of `batch`; outputs are bit-identical
/// to scalar simulate() on the same scenario with a policy built by
/// make_policy(scheme, popt) and reset once. `off` must match `app` as
/// for simulate().
void simulate_batch(const Application& app, const OfflineResult& off,
                    const PowerModel& pm, const Overheads& overheads,
                    Scheme scheme, const PolicyOptions& popt,
                    const ScenarioBatch& batch, std::size_t lanes,
                    BatchWorkspace& ws, SimResult* results,
                    const BatchSimOptions& options = {});

}  // namespace paserta
