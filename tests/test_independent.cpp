// Tests for the independent-task slack-sharing module (the paper's [20]
// predecessor algorithm).
#include <gtest/gtest.h>

#include "common/error.h"
#include "core/independent.h"

namespace paserta {
namespace {

SimTime ms(double v) { return SimTime::from_ms(v); }

IndependentTaskSet three_tasks() {
  return IndependentTaskSet{{{"X", ms(8), ms(4)},
                             {"Y", ms(4), ms(2)},
                             {"Z", ms(4), ms(2)}}};
}

Overheads no_overheads() {
  Overheads o;
  o.speed_compute_cycles = 0;
  o.speed_change_time = SimTime::zero();
  return o;
}

std::vector<SimTime> wcet_actuals(const IndependentTaskSet& s) {
  std::vector<SimTime> a;
  for (const auto& t : s.tasks) a.push_back(t.wcet);
  return a;
}

TEST(IndependentCanonical, LtfAssignment) {
  const auto c = canonical_independent(three_tasks(), 2);
  // X(8) -> cpu0; Y(4) -> cpu1; Z(4) -> cpu1 after Y.
  EXPECT_EQ(c.order, (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(c.cpu[0], 0);
  EXPECT_EQ(c.cpu[1], 1);
  EXPECT_EQ(c.cpu[2], 1);
  EXPECT_EQ(c.start[2], ms(4));
  EXPECT_EQ(c.makespan, ms(8));
}

TEST(IndependentCanonical, SingleCpuSerial) {
  const auto c = canonical_independent(three_tasks(), 1);
  EXPECT_EQ(c.makespan, ms(16));
}

TEST(IndependentCanonical, Validation) {
  EXPECT_THROW(canonical_independent(IndependentTaskSet{}, 2), Error);
  EXPECT_THROW(canonical_independent(three_tasks(), 0), Error);
}

TEST(Independent, NpmExactEnergy) {
  const auto set = three_tasks();
  const PowerModel pm(LevelTable::intel_xscale());
  const auto r =
      simulate_independent(set, 2, ms(16), pm, no_overheads(),
                           IndependentScheme::NPM, wcet_actuals(set));
  EXPECT_TRUE(r.deadline_met);
  EXPECT_EQ(r.finish_time, ms(8));
  EXPECT_NEAR(r.busy_energy, pm.max_power() * 0.016, 1e-12);
  EXPECT_EQ(r.speed_changes, 0u);
}

TEST(Independent, SpmStretchesToDeadline) {
  const auto set = three_tasks();
  const PowerModel pm(LevelTable::intel_xscale());
  // makespan 8ms, D = 16ms -> 500 MHz -> 600 level; X takes 13.33ms.
  const auto r =
      simulate_independent(set, 2, ms(16), pm, no_overheads(),
                           IndependentScheme::SPM, wcet_actuals(set));
  EXPECT_TRUE(r.deadline_met);
  EXPECT_EQ(r.finish_time, scale_time(ms(8), 1000, 600));
  EXPECT_LT(r.total_energy(),
            pm.max_power() * 0.016 + pm.idle_power() * 0.016);
}

TEST(Independent, ShareMovesWorkToEarlyFinisher) {
  // X finishes almost immediately; with sharing, cpu0 takes Z early and
  // the whole set finishes sooner / cheaper than without sharing.
  const auto set = three_tasks();
  const PowerModel pm(LevelTable::intel_xscale());
  const Overheads ovh = no_overheads();
  std::vector<SimTime> actual{ms(1), ms(4), ms(4)};  // X short

  const auto share = simulate_independent(set, 2, ms(16), pm, ovh,
                                          IndependentScheme::GreedyShare,
                                          actual);
  const auto noshare = simulate_independent(set, 2, ms(16), pm, ovh,
                                            IndependentScheme::GreedyNoShare,
                                            actual);
  EXPECT_TRUE(share.deadline_met);
  EXPECT_TRUE(noshare.deadline_met);
  EXPECT_LE(share.total_energy(), noshare.total_energy() * (1.0 + 1e-9));
}

TEST(Independent, SharingNeverWorseOnAverage) {
  Rng rng(404);
  const PowerModel pm(LevelTable::transmeta_tm5400());
  Overheads ovh;
  double share_sum = 0.0, noshare_sum = 0.0;
  for (int trial = 0; trial < 30; ++trial) {
    const auto set =
        random_independent_set(rng, 12, ms(1), ms(10), 0.3, 0.9);
    const auto canon = canonical_independent(set, 3);
    const SimTime d{canon.makespan.ps * 2};
    const auto actual = draw_independent_actuals(set, rng);
    share_sum += simulate_independent(set, 3, d, pm, ovh,
                                      IndependentScheme::GreedyShare, actual)
                     .total_energy();
    noshare_sum +=
        simulate_independent(set, 3, d, pm, ovh,
                             IndependentScheme::GreedyNoShare, actual)
            .total_energy();
  }
  EXPECT_LT(share_sum, noshare_sum);
}

TEST(Independent, DeadlinePropertyAcrossSeeds) {
  // Theorem-1 analogue for the independent algorithm: worst case and random
  // actuals always meet the deadline when the canonical schedule fits.
  const PowerModel pm(LevelTable::intel_xscale());
  Overheads ovh;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    Rng rng(seed);
    const std::size_t n = 3 + rng.next_below(20);
    const auto set = random_independent_set(rng, n, ms(1), ms(8), 0.2, 1.0);
    for (int cpus : {1, 2, 4}) {
      // Inflated canonical makespan bound: W + n * budget covers it.
      const auto canon = canonical_independent(set, cpus);
      const SimTime budget = ovh.worst_case_budget(pm.table());
      const SimTime d =
          canon.makespan + budget * static_cast<std::int64_t>(n) + ms(1);
      for (auto scheme :
           {IndependentScheme::NPM, IndependentScheme::SPM,
            IndependentScheme::GreedyNoShare, IndependentScheme::GreedyShare}) {
        const auto worst = simulate_independent(set, cpus, d, pm, ovh, scheme,
                                                wcet_actuals(set));
        ASSERT_TRUE(worst.deadline_met)
            << to_string(scheme) << " seed " << seed << " cpus " << cpus;
        const auto rand_actual = draw_independent_actuals(set, rng);
        const auto r =
            simulate_independent(set, cpus, d, pm, ovh, scheme, rand_actual);
        ASSERT_TRUE(r.deadline_met)
            << to_string(scheme) << " seed " << seed << " cpus " << cpus;
      }
    }
  }
}

TEST(Independent, DynamicBeatsNpm) {
  Rng rng(7);
  const auto set = random_independent_set(rng, 16, ms(1), ms(10), 0.4, 0.8);
  const PowerModel pm(LevelTable::transmeta_tm5400());
  Overheads ovh;
  const auto canon = canonical_independent(set, 2);
  const SimTime d{canon.makespan.ps * 2};
  const auto actual = draw_independent_actuals(set, rng);
  const auto npm = simulate_independent(set, 2, d, pm, ovh,
                                        IndependentScheme::NPM, actual);
  const auto gss = simulate_independent(set, 2, d, pm, ovh,
                                        IndependentScheme::GreedyShare, actual);
  EXPECT_LT(gss.total_energy(), npm.total_energy());
}

TEST(Independent, ActualsSizeChecked) {
  const auto set = three_tasks();
  const PowerModel pm(LevelTable::intel_xscale());
  EXPECT_THROW(simulate_independent(set, 2, ms(16), pm, Overheads{},
                                    IndependentScheme::NPM, {}),
               Error);
}

TEST(Independent, RandomSetRespectsRanges) {
  Rng rng(3);
  const auto set = random_independent_set(rng, 50, ms(2), ms(4), 0.5, 0.7);
  ASSERT_EQ(set.tasks.size(), 50u);
  for (const auto& t : set.tasks) {
    EXPECT_GE(t.wcet, ms(2));
    EXPECT_LE(t.wcet, ms(4));
    EXPECT_GT(t.acet, SimTime::zero());
    EXPECT_LE(t.acet, t.wcet);
  }
  EXPECT_GT(set.total_wcet(), set.total_acet());
}

TEST(Independent, SchemeNames) {
  EXPECT_STREQ(to_string(IndependentScheme::GreedyShare), "GSS");
  EXPECT_STREQ(to_string(IndependentScheme::GreedyNoShare), "GREEDY");
}

}  // namespace
}  // namespace paserta
