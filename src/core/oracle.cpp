#include "core/oracle.h"

#include "common/error.h"

namespace paserta {
namespace {

SimResult run_at_level(const Application& app, const OfflineResult& off,
                       const PowerModel& pm, const Overheads& ovh,
                       std::size_t level, const RunScenario& sc) {
  FixedLevelPolicy policy(level);
  policy.reset(off, pm);
  return simulate(app, off, pm, ovh, policy, sc);
}

}  // namespace

OracleResult clairvoyant_oracle(const Application& app,
                                const OfflineResult& off, const PowerModel& pm,
                                const Overheads& ovh,
                                const RunScenario& sc) {
  OracleResult out;
  const std::size_t top = pm.table().size() - 1;

  SimResult at_top = run_at_level(app, off, pm, ovh, top, sc);
  if (!at_top.deadline_met) {
    // Even full speed misses: the scenario itself is infeasible (only
    // possible when the offline phase already flagged W > D).
    out.feasible = false;
    out.level = top;
    out.energy = at_top.total_energy();
    out.finish_time = at_top.finish_time;
    out.run = std::move(at_top);
    return out;
  }

  // Binary search the lowest feasible level. Feasibility is monotone for a
  // fixed dispatch order: raising the frequency shortens every task.
  std::size_t lo = 0, hi = top;
  SimResult best = std::move(at_top);
  std::size_t best_level = top;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    SimResult r = run_at_level(app, off, pm, ovh, mid, sc);
    if (r.deadline_met) {
      best = std::move(r);
      best_level = mid;
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }

  out.feasible = true;
  out.level = best_level;
  out.energy = best.total_energy();
  out.finish_time = best.finish_time;
  out.run = std::move(best);
  return out;
}

}  // namespace paserta
