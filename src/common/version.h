// Build provenance: the git revision and build type stamped into the
// binary at configure time. This is the same provenance the bench history
// records per entry (BENCH_throughput.json `git_rev`), surfaced at run
// time so a deployed server or CLI can always say which tree produced it.
//
// The stamp is computed by CMake (`git rev-parse --short HEAD`) when the
// build is configured; a build from an exported tarball reports
// "unknown". A configure-time stamp can lag new commits until the next
// CMake rerun — good enough for provenance, and it keeps incremental
// builds from relinking the world on every commit.
#pragma once

#include <string>

namespace paserta {

/// Short git revision of the configured tree ("unknown" outside git).
const char* build_git_rev();

/// CMake build type ("Release", "Debug", ... or "unknown").
const char* build_type();

/// One-line human stamp: "paserta <rev> (<build type>)".
std::string build_version_string();

}  // namespace paserta
