// Tests for the clairvoyant single-speed oracle.
#include <gtest/gtest.h>

#include "apps/synthetic.h"
#include "common/error.h"
#include "core/offline.h"
#include "core/oracle.h"

namespace paserta {
namespace {

SimTime ms(double v) { return SimTime::from_ms(v); }

OfflineResult analyze(const Application& app, SimTime deadline, int cpus,
                      SimTime budget = SimTime::zero()) {
  OfflineOptions o;
  o.cpus = cpus;
  o.deadline = deadline;
  o.overhead_budget = budget;
  return analyze_offline(app, o);
}

Overheads no_overheads() {
  Overheads o;
  o.speed_compute_cycles = 0;
  o.speed_change_time = SimTime::zero();
  return o;
}

TEST(Oracle, PicksExactlyTheNeededLevel) {
  // 10ms of work, 25ms deadline: 400 MHz (10ms -> 25ms exactly at the
  // XScale 400 level) is feasible, 150 MHz (66.7ms) is not.
  Program p;
  p.task("T", ms(10), ms(10));
  const Application app = build_application("o", p);
  const PowerModel pm(LevelTable::intel_xscale());
  const OfflineResult off = analyze(app, ms(25), 1);

  const RunScenario sc = worst_case_scenario(app.graph);
  const OracleResult r =
      clairvoyant_oracle(app, off, pm, no_overheads(), sc);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(pm.table().level(r.level).freq, 400 * kMHz);
  EXPECT_EQ(r.finish_time, ms(25));
}

TEST(Oracle, UsesActualTimesNotWcets) {
  // Same task, but the actual time is 4ms: 150 MHz fits within 26.7ms...
  // deadline 25ms -> 4ms * 1000/150 = 26.7ms misses; 400 MHz = 10ms fits.
  // With actual 3ms: 150 MHz -> 20ms fits.
  Program p;
  p.task("T", ms(10), ms(5));
  const Application app = build_application("o", p);
  const PowerModel pm(LevelTable::intel_xscale());
  const OfflineResult off = analyze(app, ms(25), 1);

  RunScenario sc = worst_case_scenario(app.graph);
  sc.actual[0] = ms(4);
  OracleResult r = clairvoyant_oracle(app, off, pm, no_overheads(), sc);
  EXPECT_EQ(pm.table().level(r.level).freq, 400 * kMHz);

  sc.actual[0] = ms(3);
  r = clairvoyant_oracle(app, off, pm, no_overheads(), sc);
  EXPECT_EQ(pm.table().level(r.level).freq, 150 * kMHz);
}

TEST(Oracle, InfeasibleRunReported) {
  Program p;
  p.task("T", ms(50), ms(10));
  const Application app = build_application("o", p);
  const PowerModel pm(LevelTable::intel_xscale());
  const OfflineResult off = analyze(app, ms(20), 1);  // W > D
  const RunScenario sc = worst_case_scenario(app.graph);
  const OracleResult r =
      clairvoyant_oracle(app, off, pm, no_overheads(), sc);
  EXPECT_FALSE(r.feasible);
  EXPECT_EQ(r.level, pm.table().size() - 1);
}

TEST(Oracle, LowerBoundsTheConstantSpeedSchemes) {
  // Provable comparisons: NPM (top level) and SPM (level sized for the
  // *worst* case) are both constant-speed schedules feasible for this
  // scenario, so the oracle — the cheapest feasible constant level — can
  // never consume more. Dynamic schemes can legitimately beat the oracle
  // (they may run non-critical tasks below the oracle level; mixed levels
  // can also emulate the continuous optimum better than any single level,
  // which is exactly SS2's reason to exist), so no assertion there.
  const Application app = apps::build_synthetic();
  const PowerModel pm(LevelTable::transmeta_tm5400());
  Overheads ovh;
  OfflineOptions o;
  o.cpus = 2;
  o.overhead_budget = ovh.worst_case_budget(pm.table());
  o.deadline = canonical_worst_makespan(app, 2, o.overhead_budget) * 2;
  const OfflineResult off = analyze_offline(app, o);

  Rng rng(77);
  for (int run = 0; run < 20; ++run) {
    const RunScenario sc = draw_scenario(app.graph, rng);
    const OracleResult oracle = clairvoyant_oracle(app, off, pm, ovh, sc);
    ASSERT_TRUE(oracle.feasible);
    for (Scheme s : {Scheme::NPM, Scheme::SPM}) {
      const SimResult r = simulate(app, off, pm, ovh, s, sc);
      EXPECT_LE(oracle.energy, r.total_energy() * (1.0 + 1e-9))
          << to_string(s) << " beat the oracle";
    }
  }
}

TEST(Oracle, BinarySearchMatchesLinearScan) {
  const Application app = apps::build_synthetic();
  const PowerModel pm(LevelTable::transmeta_tm5400());  // 16 levels
  const Overheads ovh = no_overheads();
  OfflineOptions o;
  o.cpus = 2;
  o.deadline = canonical_worst_makespan(app, 2, SimTime::zero()) * 3;
  const OfflineResult off = analyze_offline(app, o);

  Rng rng(5);
  for (int run = 0; run < 10; ++run) {
    const RunScenario sc = draw_scenario(app.graph, rng);
    const OracleResult r = clairvoyant_oracle(app, off, pm, ovh, sc);
    // Linear scan reference.
    std::size_t expect = pm.table().size() - 1;
    for (std::size_t lvl = 0; lvl < pm.table().size(); ++lvl) {
      FixedLevelPolicy fp(lvl);
      fp.reset(off, pm);
      if (simulate(app, off, pm, ovh, fp, sc).deadline_met) {
        expect = lvl;
        break;
      }
    }
    EXPECT_EQ(r.level, expect);
  }
}

TEST(FixedLevelPolicy, RejectsOutOfRange) {
  Program p;
  p.task("T", ms(1), ms(1));
  const Application app = build_application("f", p);
  const PowerModel pm(LevelTable::intel_xscale());
  const OfflineResult off = analyze(app, ms(10), 1);
  FixedLevelPolicy fp(99);
  EXPECT_THROW(fp.reset(off, pm), Error);
}

}  // namespace
}  // namespace paserta
