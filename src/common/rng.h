// Deterministic random number generation.
//
// Experiments must be exactly reproducible from a seed, independent of the
// platform's std::mt19937 / distribution implementations (which the C++
// standard does not pin down for normal/discrete distributions). paserta
// therefore ships its own xoshiro256++ generator plus the handful of
// distributions the simulator needs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/error.h"

namespace paserta {

/// xoshiro256++ 1.0 (Blackman & Vigna, public domain algorithm),
/// seeded via splitmix64. Deterministic across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [0, n) using rejection sampling (unbiased).
  std::uint64_t next_below(std::uint64_t n);

  /// Standard normal variate (Marsaglia polar method).
  double next_gaussian();

  /// Normal with the given mean / standard deviation.
  double next_normal(double mean, double stddev) {
    return mean + stddev * next_gaussian();
  }

  /// Sample an index from a discrete distribution. `weights` need not be
  /// normalized but must be non-negative with a positive sum.
  std::size_t next_discrete(std::span<const double> weights);

  /// Derive an independent child generator; used to give each Monte-Carlo
  /// run its own stream so scheme evaluation order cannot perturb draws.
  Rng fork();

  /// Stateless seed derivation for stream `index` of experiment `seed`:
  /// lets run i be reproduced in isolation and in any order (the parallel
  /// harness depends on this).
  static std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t index);

 private:
  std::uint64_t s_[4]{};
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace paserta
