file(REMOVE_RECURSE
  "CMakeFiles/paserta_cli.dir/paserta_cli.cpp.o"
  "CMakeFiles/paserta_cli.dir/paserta_cli.cpp.o.d"
  "paserta_cli"
  "paserta_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paserta_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
