#include "sim/engine.h"

#include <algorithm>
#include <functional>
#include <span>

#include "common/error.h"

namespace paserta {
namespace {

/// Number of nodes on the taken path, computed with workspace scratch so
/// the per-run completeness check allocates nothing in steady state. Same
/// closure as executed_set(), counting instead of materializing.
std::uint32_t count_executed(const AndOrGraph& g, const RunScenario& sc,
                             SimWorkspace& ws) {
  const std::size_t n = g.size();
  ws.reach_nup.resize(n);
  ws.reached.assign(n, 0);
  ws.reach_stack.clear();
  // Index loop instead of all_nodes(): the latter materializes a vector,
  // which would put an allocation back into every run.
  const std::span<const Node> nodes = g.nodes();
  for (std::uint32_t v = 0; v < n; ++v) {
    const Node& node = nodes[v];
    ws.reach_nup[v] =
        node.kind == NodeKind::OrNode
            ? std::min<std::uint32_t>(
                  1, static_cast<std::uint32_t>(node.preds.size()))
            : static_cast<std::uint32_t>(node.preds.size());
    if (ws.reach_nup[v] == 0) ws.reach_stack.push_back(v);
  }
  std::uint32_t count = 0;
  while (!ws.reach_stack.empty()) {
    const NodeId id{ws.reach_stack.back()};
    ws.reach_stack.pop_back();
    if (ws.reached[id.value]) continue;
    ws.reached[id.value] = 1;
    ++count;
    const Node& node = nodes[id.value];
    if (node.is_or_fork()) {
      const int chosen = sc.choice_of(id);
      ws.reach_stack.push_back(
          node.succs[static_cast<std::size_t>(chosen)].value);
    } else {
      for (NodeId s : node.succs) {
        if (ws.reach_nup[s.value] > 0 && --ws.reach_nup[s.value] == 0)
          ws.reach_stack.push_back(s.value);
      }
    }
  }
  return count;
}

class Engine {
 public:
  Engine(const Application& app, const OfflineResult& off, const PowerModel& pm,
         const Overheads& ovh, SpeedPolicy& policy, const RunScenario& sc,
         SimWorkspace& ws, const SimOptions& opt)
      : app_(app),
        g_(app.graph),
        nodes_(app.graph.nodes()),
        eo_(off.eo_table()),
        eet_(off.eet_table()),
        off_(off),
        pm_(pm),
        ovh_(ovh),
        policy_(policy),
        sc_(sc),
        ws_(ws),
        opt_(opt) {}

  SimResult run();

 private:
  using Cpu = SimWorkspace::Cpu;
  using Completion = SimWorkspace::Completion;

  void dispatch(int cpu, SimTime t);
  void on_completion(int cpu, NodeId node, SimTime t);
  void enqueue_ready(NodeId id);
  std::pair<std::uint32_t, std::uint32_t> pop_ready();
  void release_successors(NodeId id);
  bool head_dispatchable() const;
  void wake_one(SimTime t);

  const Application& app_;
  const AndOrGraph& g_;
  // simulate() validates that scenario and offline data match the graph,
  // so the per-dispatch paths below index unchecked.
  const std::span<const Node> nodes_;
  const std::span<const std::uint32_t> eo_;
  const std::span<const SimTime> eet_;
  const OfflineResult& off_;
  const PowerModel& pm_;
  const Overheads& ovh_;
  SpeedPolicy& policy_;
  const RunScenario& sc_;
  SimWorkspace& ws_;
  const SimOptions& opt_;

  std::uint32_t neo_ = 0;
  std::uint64_t seq_ = 0;

  SimResult result_;
  SimTime last_activity_{};
};

void Engine::enqueue_ready(NodeId id) {
  ws_.ready.emplace_back(eo_[id.value], id.value);
  std::push_heap(ws_.ready.begin(), ws_.ready.end(), std::greater<>{});
}

std::pair<std::uint32_t, std::uint32_t> Engine::pop_ready() {
  std::pop_heap(ws_.ready.begin(), ws_.ready.end(), std::greater<>{});
  const auto head = ws_.ready.back();
  ws_.ready.pop_back();
  return head;
}

void Engine::release_successors(NodeId id) {
  for (NodeId s : nodes_[id.value].succs) {
    PASERTA_ASSERT(ws_.nup[s.value] > 0, "NUP underflow at node '"
                                             << nodes_[s.value].name << "'");
    if (--ws_.nup[s.value] == 0) enqueue_ready(s);
  }
}

bool Engine::head_dispatchable() const {
  if (ws_.ready.empty()) return false;
  const auto [eo, idv] = ws_.ready.front();
  if (eo == neo_) return true;
  // OR nodes may jump NEO forward past the EOs of untaken alternatives.
  return nodes_[idv].kind == NodeKind::OrNode && eo > neo_;
}

void Engine::wake_one(SimTime t) {
  if (!head_dispatchable()) return;
  for (int c = 0; c < static_cast<int>(ws_.cpus.size()); ++c) {
    if (ws_.cpus[c].sleeping) {
      ws_.cpus[c].sleeping = false;
      dispatch(c, t);
      return;
    }
  }
}

void Engine::dispatch(int cpu_id, SimTime t) {
  Cpu& cpu = ws_.cpus[static_cast<std::size_t>(cpu_id)];
  for (;;) {
    if (!head_dispatchable()) {
      cpu.sleeping = true;  // Figure 2 step 3: wait()
      return;
    }
    const auto [eo, idv] = pop_ready();
    const NodeId id{idv};
    const Node& n = nodes_[idv];
    PASERTA_ASSERT(eo >= neo_, "execution order went backwards");
    neo_ = eo + 1;  // Figure 2 steps 4 & 7
    ++result_.dispatched;
    last_activity_ = std::max(last_activity_, t);

    TaskRecord rec;
    rec.node = id;
    rec.cpu = cpu_id;
    rec.eo = eo;
    rec.dispatch_time = t;
    rec.level = cpu.level;
    rec.level_before = cpu.level;

    if (n.is_dummy()) {
      rec.exec_start = rec.finish = t;
      if (n.is_or_fork()) {
        const int chosen = sc_.or_choice[idv];
        PASERTA_ASSERT(chosen >= 0 &&
                           static_cast<std::size_t>(chosen) < n.succs.size(),
                       "scenario lacks a choice for fork '" << n.name << "'");
        rec.chosen_alt = chosen;
        const NodeId child = n.succs[static_cast<std::size_t>(chosen)];
        ws_.nup[child.value] = 0;
        enqueue_ready(child);
        if (policy_.kind() == SpeedPolicy::Kind::Dynamic)
          policy_.on_or_fired(id, chosen, t, off_, pm_);
      } else {
        release_successors(id);
        if (n.kind == NodeKind::OrNode &&
            policy_.kind() == SpeedPolicy::Kind::Dynamic)
          policy_.on_or_fired(id, -1, t, off_, pm_);
      }
      if (opt_.record_trace) ws_.trace.push_back(rec);
      continue;  // same processor keeps dispatching at the same instant
    }

    // ---- Computation node: pick a speed and execute (Figure 2 step 5). --
    SimTime start = t;
    std::size_t lvl = cpu.level;
    const LevelTable& table = pm_.table();

    if (policy_.kind() == SpeedPolicy::Kind::Dynamic) {
      // Speed-computation overhead runs at the current frequency.
      const SimTime dt_compute =
          cycles_to_time(ovh_.speed_compute_cycles, table.level(lvl).freq);
      result_.overhead_energy += pm_.busy_energy(lvl, dt_compute);
      cpu.busy += dt_compute;
      start += dt_compute;

      // Greedy slack reclamation: the task owns everything up to its
      // estimated end time EET = LST + inflated WCET. Reserve the switch
      // overhead before sizing the speed (conservative: the reservation is
      // kept even if the level ends up unchanged).
      const SimTime avail = eet_[idv] - start - ovh_.speed_change_time;
      const Freq gss = required_freq(table.f_max(), n.wcet, avail);
      const Freq target = std::max(gss, policy_.floor_freq(start));
      const std::size_t new_lvl = table.quantize_up(target);

      if (new_lvl != lvl) {
        result_.overhead_energy +=
            pm_.transition_energy(lvl, new_lvl, ovh_.speed_change_time);
        cpu.busy += ovh_.speed_change_time;
        start += ovh_.speed_change_time;
        ++result_.speed_changes;
        rec.switched = true;
        lvl = new_lvl;
        cpu.level = lvl;
      }
    }

    const SimTime actual = sc_.actual[idv];
    PASERTA_ASSERT(actual > SimTime::zero() && actual <= n.wcet,
                   "scenario actual time out of (0, WCET] for '" << n.name
                                                                 << "'");
    const SimTime duration =
        scale_time(actual, table.f_max(), table.level(lvl).freq);
    const SimTime finish = start + duration;
    result_.busy_energy += pm_.busy_energy(lvl, duration);
    cpu.busy += duration;

    rec.exec_start = start;
    rec.finish = finish;
    rec.level = lvl;
    if (opt_.record_trace) ws_.trace.push_back(rec);
    ws_.events.push_back(Completion{finish, seq_++, cpu_id, id});
    std::push_heap(ws_.events.begin(), ws_.events.end(), std::greater<>{});

    // Figure 2 step 5: if another processor sleeps and the (new) head is
    // dispatchable, signal it before executing.
    wake_one(t);
    return;
  }
}

void Engine::on_completion(int cpu_id, NodeId node, SimTime t) {
  last_activity_ = std::max(last_activity_, t);
  release_successors(node);
  dispatch(cpu_id, t);  // Figure 2 step 6: back to step 1
}

SimResult Engine::run() {
  const std::size_t n = g_.size();
  ws_.nup.resize(n);
  ws_.ready.clear();
  ws_.events.clear();
  ws_.trace.clear();
  for (std::uint32_t v = 0; v < n; ++v) {
    const Node& node = nodes_[v];
    // OR nodes fire on their first (and only executed) finishing
    // predecessor: NUP starts at 1 (Figure 2 initialization).
    ws_.nup[v] = node.kind == NodeKind::OrNode
                     ? std::min<std::uint32_t>(
                           1, static_cast<std::uint32_t>(node.preds.size()))
                     : static_cast<std::uint32_t>(node.preds.size());
    if (ws_.nup[v] == 0) enqueue_ready(NodeId{v});
  }

  const std::size_t initial_level =
      policy_.kind() == SpeedPolicy::Kind::Static
          ? policy_.static_level()
          : pm_.table().size() - 1;  // dynamic schemes power up at f_max
  ws_.cpus.assign(static_cast<std::size_t>(off_.cpus()),
                  Cpu{initial_level, false, SimTime::zero()});

  for (int c = 0; c < off_.cpus(); ++c) {
    if (!ws_.cpus[static_cast<std::size_t>(c)].sleeping) {
      // dispatch() may have been woken transitively already; the flag
      // check keeps each CPU's first dispatch single.
      dispatch(c, SimTime::zero());
    }
  }

  while (!ws_.events.empty()) {
    std::pop_heap(ws_.events.begin(), ws_.events.end(), std::greater<>{});
    const Completion e = ws_.events.back();
    ws_.events.pop_back();
    on_completion(e.cpu, e.node, e.finish);
  }

  // Completeness: every node on the taken path must have been dispatched.
  const std::uint32_t expected_count = count_executed(g_, sc_, ws_);
  PASERTA_ASSERT(ws_.ready.empty(), "simulation ended with ready work");
  PASERTA_ASSERT(result_.dispatched == expected_count,
                 "simulation dispatched " << result_.dispatched << " of "
                                          << expected_count
                                          << " expected nodes (deadlock?)");

  result_.finish_time = last_activity_;
  result_.deadline_met = result_.finish_time <= off_.deadline();

  // Idle/sleep energy over [0, deadline].
  for (const Cpu& c : ws_.cpus) {
    const SimTime idle = off_.deadline() - c.busy;
    if (idle > SimTime::zero()) result_.idle_energy += pm_.idle_energy(idle);
  }
  if (opt_.record_trace) {
    result_.trace = std::move(ws_.trace);
    ws_.trace.clear();  // leave the moved-from buffer in a defined state
  }
  return result_;
}

}  // namespace

std::vector<bool> executed_set(const AndOrGraph& g, const RunScenario& sc) {
  std::vector<std::uint32_t> nup(g.size());
  std::vector<bool> executed(g.size(), false);
  std::vector<NodeId> stack;
  for (NodeId id : g.all_nodes()) {
    const Node& n = g.node(id);
    nup[id.value] =
        n.kind == NodeKind::OrNode
            ? std::min<std::uint32_t>(
                  1, static_cast<std::uint32_t>(n.preds.size()))
            : static_cast<std::uint32_t>(n.preds.size());
    if (nup[id.value] == 0) stack.push_back(id);
  }
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    if (executed[id.value]) continue;
    executed[id.value] = true;
    const Node& n = g.node(id);
    if (n.is_or_fork()) {
      const int chosen = sc.choice_of(id);
      stack.push_back(n.succs[static_cast<std::size_t>(chosen)]);
    } else {
      for (NodeId s : n.succs) {
        if (nup[s.value] > 0 && --nup[s.value] == 0) stack.push_back(s);
      }
    }
  }
  return executed;
}

SimResult simulate(const Application& app, const OfflineResult& off,
                   const PowerModel& pm, const Overheads& overheads,
                   SpeedPolicy& policy, const RunScenario& scenario,
                   SimWorkspace& workspace, const SimOptions& options) {
  PASERTA_REQUIRE(scenario.actual.size() == app.graph.size() &&
                      scenario.or_choice.size() == app.graph.size(),
                  "scenario size does not match the application graph");
  PASERTA_REQUIRE(off.eo_table().size() == app.graph.size() &&
                      off.eet_table().size() == app.graph.size(),
                  "offline result does not match the application graph");
  Engine engine(app, off, pm, overheads, policy, scenario, workspace, options);
  return engine.run();
}

SimResult simulate(const Application& app, const OfflineResult& off,
                   const PowerModel& pm, const Overheads& overheads,
                   SpeedPolicy& policy, const RunScenario& scenario) {
  SimWorkspace workspace;
  return simulate(app, off, pm, overheads, policy, scenario, workspace,
                  SimOptions{});
}

SimResult simulate(const Application& app, const OfflineResult& off,
                   const PowerModel& pm, const Overheads& overheads,
                   Scheme scheme, const RunScenario& scenario) {
  auto policy = make_policy(scheme);
  policy->reset(off, pm);
  return simulate(app, off, pm, overheads, *policy, scenario);
}

}  // namespace paserta
