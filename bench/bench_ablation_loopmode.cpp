// Ablation: loop treatment (paper §2.1 offers both). Collapsing a loop to
// one aggregate task is simpler but pessimistic — the WCET covers the
// maximal iteration count even when the loop exits early, and no PMP
// exists inside the loop for AS to re-speculate at. Unrolling exposes the
// per-iteration OR exits. Quantifies the cost of the simpler treatment.
#include "apps/synthetic.h"
#include "bench_util.h"

using namespace paserta;

int main(int argc, char** argv) {
  const int runs = benchutil::runs_from_args(argc, argv, 500);
  const std::vector<double> loads = {0.3, 0.5, 0.7, 0.9};

  for (auto mode : {LoopMode::Unroll, LoopMode::Collapse}) {
    apps::SyntheticConfig sc;
    sc.loop_mode = mode;
    const Application app = apps::build_synthetic(sc);
    const char* name = mode == LoopMode::Unroll ? "unroll" : "collapse";

    for (const LevelTable& table :
         {LevelTable::transmeta_tm5400(), LevelTable::intel_xscale()}) {
      auto cfg = benchutil::paper_config(table, 2, runs);
      cfg.schemes = {Scheme::GSS, Scheme::AS};
      const SimTime w = canonical_worst_makespan(
          app, cfg.cpus, cfg.overheads.worst_case_budget(cfg.table));
      std::cout << "# loop mode " << name << " on " << table.name()
                << ": canonical W = " << to_string(w) << " ("
                << app.graph.task_count() << " tasks)\n";
      benchutil::emit(
          std::string("Ablation.loopmode.") + name + "." + table.name(),
          std::string("Energy vs load, synthetic Fig.3, 2 CPUs, loops ") +
              name + "ed",
          sweep_load(app, cfg, loads), "load");
    }
  }
  return 0;
}
