// bench_compare — throughput regression gate over BENCH_throughput.json.
//
//   bench_compare [HISTORY] [--check] [--threshold PCT]
//
// Reads the append-only measurement history (default:
// BENCH_throughput.json next to the working directory), picks the newest
// two *clean* entries — an entry is clean when it carries a git_rev and its
// "dirty" provenance flag is absent or false — and compares every
// throughput series between them, matched by thread count:
//
//   point.samples[].runs_per_sec          (Monte-Carlo hot loop, by threads)
//   batch.samples[].runs_per_sec          (batched engine, by batch size)
//   dedup.samples[].on_runs_per_sec       (scenario-dedup path, by run count)
//   sweep.samples[].pooled_points_per_sec (whole-sweep pooled path)
//   serve.samples[].requests_per_sec      (resident daemon, by client count)
//
// A drop larger than the threshold (default 5 %) in any matched series is a
// regression. Dirty entries are skipped with a warning (a number measured
// on uncommitted changes cannot be attributed to its revision); legacy
// entries without a git_rev are skipped the same way.
//
// The newest clean entry is additionally held to a sweep-efficiency floor
// (--efficiency-floor, default 0.5): at the entry's maximum recorded
// thread count, pooled scaling efficiency — normalized by what the
// recording host could physically deliver, min(threads, host_threads) —
// must not fall below the floor, so thread scaling can never silently
// regress back to ~1x while absolute throughput stays flat. Entries
// without host_threads provenance (recorded before it existed) skip the
// gate with a note. It is also held to a batched-engine floor
// (--batch-floor, default 1.0): in the batch section, the auto batch size
// (batch=0) must run at least that multiple of the forced-scalar (batch=1)
// runs/sec — the two share one invocation, so the ratio is host-speed
// independent. Entries without a batch section skip this gate with a note.
// A third floor (--dedup-floor, default 3.0) holds the dedup section's
// recorded on-over-off speedup at its largest run count; entries without a
// dedup section skip it with a note. A fourth floor (--serve-cache-floor,
// default 0.9) holds the serve section's offline-cache hit rate at its
// largest client count: the daemon's whole point is that a resident
// process re-serves repeated graphs from the cross-request cache, so a hit
// rate collapse is a regression even if raw requests/sec still looks fine.
// Entries without a serve section skip it with a note. Failure summaries
// name every series and gate that tripped.
//
// Exit status: without --check always 0 (report mode, for humans). With
// --check: 1 on a regression, 0 otherwise — including when fewer than two
// clean entries exist, which prints a note and passes so CI can adopt the
// gate before the history has a comparable pair.
#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "harness/json.h"

using namespace paserta;

namespace {

struct Args {
  std::string history = "BENCH_throughput.json";
  bool check = false;
  double threshold_pct = 5.0;
  double efficiency_floor = 0.5;
  double batch_floor = 1.0;
  double dedup_floor = 3.0;
  double serve_cache_floor = 0.9;
};

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg != nullptr) std::cerr << "error: " << msg << "\n";
  std::cerr << "usage: bench_compare [HISTORY] [--check] [--threshold PCT]\n"
               "                     [--efficiency-floor F] [--batch-floor F]\n"
               "\n"
               "  HISTORY          throughput history file (default\n"
               "                   BENCH_throughput.json)\n"
               "  --check          exit 1 when a throughput series regressed\n"
               "                   by more than the threshold between the\n"
               "                   newest two clean entries, or the newest\n"
               "                   entry fails the efficiency floor\n"
               "  --threshold PCT  regression threshold in percent\n"
               "                   (default 5)\n"
               "  --efficiency-floor F\n"
               "                   minimum pooled sweep efficiency at the\n"
               "                   newest entry's max thread count, after\n"
               "                   normalizing by the recording host's\n"
               "                   min(threads, host_threads) (default 0.5;\n"
               "                   0 disables the gate)\n"
               "  --batch-floor F  minimum batched-over-scalar speedup in\n"
               "                   the newest entry's batch section (auto\n"
               "                   batch runs/sec over batch=1 runs/sec;\n"
               "                   default 1.0; 0 disables the gate;\n"
               "                   entries without a batch section skip it\n"
               "                   with a note)\n"
               "  --dedup-floor F  minimum dedup-on over dedup-off speedup\n"
               "                   at the largest run count of the newest\n"
               "                   entry's dedup section (default 3.0; 0\n"
               "                   disables the gate; entries without a\n"
               "                   dedup section skip it with a note)\n"
               "  --serve-cache-floor F\n"
               "                   minimum offline-cache hit rate at the\n"
               "                   largest client count of the newest\n"
               "                   entry's serve section (default 0.9; 0\n"
               "                   disables the gate; entries without a\n"
               "                   serve section skip it with a note)\n";
  std::exit(2);
}

Args parse_args(int argc, char** argv) {
  Args a;
  bool have_history = false;
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    std::string inline_value;
    bool has_inline = false;
    if (const std::size_t eq = flag.find('=');
        flag.rfind("--", 0) == 0 && eq != std::string::npos) {
      inline_value = flag.substr(eq + 1);
      has_inline = true;
      flag.erase(eq);
    }
    const auto value = [&](const char* name) -> std::string {
      if (has_inline) return inline_value;
      if (++i >= argc) usage((std::string(name) + " needs a value").c_str());
      return argv[i];
    };
    if (flag == "--check") {
      a.check = true;
    } else if (flag == "--threshold") {
      char* end = nullptr;
      const std::string v = value("--threshold");
      a.threshold_pct = std::strtod(v.c_str(), &end);
      if (end == v.c_str() || *end != '\0' || !(a.threshold_pct >= 0.0))
        usage("--threshold needs a non-negative number");
    } else if (flag == "--efficiency-floor") {
      char* end = nullptr;
      const std::string v = value("--efficiency-floor");
      a.efficiency_floor = std::strtod(v.c_str(), &end);
      if (end == v.c_str() || *end != '\0' || !(a.efficiency_floor >= 0.0))
        usage("--efficiency-floor needs a non-negative number");
    } else if (flag == "--batch-floor") {
      char* end = nullptr;
      const std::string v = value("--batch-floor");
      a.batch_floor = std::strtod(v.c_str(), &end);
      if (end == v.c_str() || *end != '\0' || !(a.batch_floor >= 0.0))
        usage("--batch-floor needs a non-negative number");
    } else if (flag == "--serve-cache-floor") {
      char* end = nullptr;
      const std::string v = value("--serve-cache-floor");
      a.serve_cache_floor = std::strtod(v.c_str(), &end);
      if (end == v.c_str() || *end != '\0' || !(a.serve_cache_floor >= 0.0))
        usage("--serve-cache-floor needs a non-negative number");
    } else if (flag == "--dedup-floor") {
      char* end = nullptr;
      const std::string v = value("--dedup-floor");
      a.dedup_floor = std::strtod(v.c_str(), &end);
      if (end == v.c_str() || *end != '\0' || !(a.dedup_floor >= 0.0))
        usage("--dedup-floor needs a non-negative number");
    } else if (flag == "--help" || flag == "-h") {
      usage();
    } else if (flag.rfind("--", 0) == 0) {
      usage(("unknown flag " + flag).c_str());
    } else if (!have_history) {
      a.history = flag;
      have_history = true;
    } else {
      usage("more than one history file given");
    }
  }
  return a;
}

std::string entry_label(const JsonValue& e, std::size_t index) {
  const JsonValue* rev = e.find("git_rev");
  std::ostringstream os;
  os << "entry #" << index;
  if (rev != nullptr && rev->type == JsonValue::Type::String)
    os << " (" << rev->str << ")";
  return os.str();
}

/// Clean = attributable to a revision: git_rev present, dirty flag absent
/// (pre-flag history) or false.
bool is_clean(const JsonValue& e, std::size_t index) {
  const JsonValue* rev = e.find("git_rev");
  if (rev == nullptr || rev->type != JsonValue::Type::String) {
    std::cerr << "warning: skipping " << entry_label(e, index)
              << " — no git_rev (legacy entry)\n";
    return false;
  }
  const JsonValue* dirty = e.find("dirty");
  if (dirty != nullptr && dirty->type == JsonValue::Type::Bool &&
      dirty->boolean) {
    std::cerr << "warning: skipping " << entry_label(e, index)
              << " — measured on a dirty tree\n";
    return false;
  }
  return true;
}

struct Series {
  std::string name;  // e.g. "point.runs_per_sec@threads=4"
  double value = 0.0;
};

/// Flattens one entry's throughput series: every sample of `section` keyed
/// by `key` (the per-sample discriminator — thread count for the point and
/// sweep sections, requested batch size for the batch section), reading
/// `field`.
void collect(const JsonValue& entry, const char* section, const char* key,
             const char* field, std::vector<Series>& out) {
  const JsonValue* sec = entry.find(section);
  if (sec == nullptr || !sec->is_object()) return;
  const JsonValue* samples = sec->find("samples");
  if (samples == nullptr || !samples->is_array()) return;
  for (const JsonValue& s : samples->array) {
    const JsonValue* k = s.find(key);
    const JsonValue* v = s.find(field);
    if (k == nullptr || k->type != JsonValue::Type::Number || v == nullptr ||
        v->type != JsonValue::Type::Number)
      continue;
    std::ostringstream name;
    name << section << "." << field << "@" << key << "="
         << static_cast<long long>(k->number);
    out.push_back({name.str(), v->number});
  }
}

std::vector<Series> collect_entry(const JsonValue& entry) {
  std::vector<Series> out;
  collect(entry, "point", "threads", "runs_per_sec", out);
  collect(entry, "batch", "batch", "runs_per_sec", out);
  collect(entry, "dedup", "runs", "on_runs_per_sec", out);
  collect(entry, "sweep", "threads", "pooled_points_per_sec", out);
  collect(entry, "serve", "clients", "requests_per_sec", out);
  return out;
}

/// Sweep-efficiency gate on one entry: at the maximum recorded thread
/// count, pooled efficiency must clear `floor` after normalizing by the
/// parallelism the recording host could actually deliver. The recorded
/// efficiency divides the speedup-over-1-thread by the *requested* thread
/// count, so a 1-core host pins it to ~1/threads no matter how well the
/// code scales; multiplying back by threads / min(threads, host_threads)
/// judges the code, not the machine. Returns false on a violation.
bool efficiency_gate_ok(const JsonValue& entry, std::size_t index,
                        double floor) {
  if (!(floor > 0.0)) return true;  // disabled
  const JsonValue* sweep = entry.find("sweep");
  const JsonValue* samples =
      sweep != nullptr && sweep->is_object() ? sweep->find("samples") : nullptr;
  if (samples == nullptr || !samples->is_array()) {
    std::cout << "note: " << entry_label(entry, index)
              << " has no sweep samples — efficiency gate skipped\n";
    return true;
  }
  const JsonValue* host = sweep->find("host_threads");
  if (host == nullptr || host->type != JsonValue::Type::Number ||
      !(host->number >= 1.0)) {
    std::cout << "note: " << entry_label(entry, index)
              << " predates host_threads provenance — efficiency gate "
                 "skipped\n";
    return true;
  }
  const JsonValue* best = nullptr;
  double best_threads = 0.0;
  for (const JsonValue& s : samples->array) {
    const JsonValue* threads = s.find("threads");
    const JsonValue* eff = s.find("efficiency");
    if (threads == nullptr || threads->type != JsonValue::Type::Number ||
        eff == nullptr || eff->type != JsonValue::Type::Number)
      continue;
    if (best == nullptr || threads->number > best_threads) {
      best = &s;
      best_threads = threads->number;
    }
  }
  if (best == nullptr || !(best_threads > 1.0)) {
    std::cout << "note: " << entry_label(entry, index)
              << " has no multi-thread sweep sample — efficiency gate "
                 "skipped\n";
    return true;
  }
  const double raw = best->find("efficiency")->number;
  const double achievable = std::min(best_threads, host->number);
  const double normalized = raw * best_threads / achievable;
  const bool ok = normalized >= floor;
  std::cout << "  " << (ok ? "ok" : "REGRESSION")
            << "  sweep.efficiency@threads="
            << static_cast<long long>(best_threads) << ": raw " << raw
            << ", host_threads " << static_cast<long long>(host->number)
            << " -> normalized " << normalized << " (floor " << floor
            << ")\n";
  return ok;
}

/// Batched-engine gate on one entry: the auto batch size (batch == 0) must
/// deliver at least `floor` times the forced-scalar (batch == 1) runs/sec
/// in the entry's batch section. Both measurements come from the same
/// bench invocation, so the ratio cancels host speed and isolates engine
/// overhead — the batched path is bit-identical to the scalar oracle, so
/// anything below 1.0 is pure loss. Returns false on a violation.
bool batch_gate_ok(const JsonValue& entry, std::size_t index, double floor) {
  if (!(floor > 0.0)) return true;  // disabled
  const JsonValue* batch = entry.find("batch");
  const JsonValue* samples =
      batch != nullptr && batch->is_object() ? batch->find("samples") : nullptr;
  if (samples == nullptr || !samples->is_array()) {
    std::cout << "note: " << entry_label(entry, index)
              << " has no batch section — batch gate skipped\n";
    return true;
  }
  const double* scalar = nullptr;
  const double* batched = nullptr;
  for (const JsonValue& s : samples->array) {
    const JsonValue* b = s.find("batch");
    const JsonValue* v = s.find("runs_per_sec");
    if (b == nullptr || b->type != JsonValue::Type::Number || v == nullptr ||
        v->type != JsonValue::Type::Number)
      continue;
    if (b->number == 1.0) scalar = &v->number;
    if (b->number == 0.0) batched = &v->number;
  }
  if (scalar == nullptr || batched == nullptr || !(*scalar > 0.0)) {
    std::cout << "note: " << entry_label(entry, index)
              << " lacks batch=1 / batch=0 samples — batch gate skipped\n";
    return true;
  }
  const double speedup = *batched / *scalar;
  const bool ok = speedup >= floor;
  std::cout << "  " << (ok ? "ok" : "REGRESSION")
            << "  batch.runs_per_sec@batch=0 over @batch=1: " << *batched
            << " / " << *scalar << " -> " << speedup << "x (floor " << floor
            << ")\n";
  return ok;
}

/// Scenario-dedup gate on one entry: at the largest run count of the dedup
/// section, the recorded dedup-on-over-off speedup must clear `floor`. The
/// off and on measurements share one bench invocation on a discrete
/// (high-hit-rate) workload, so the ratio cancels host speed and isolates
/// the cache's scheduling win. Returns false on a violation.
bool dedup_gate_ok(const JsonValue& entry, std::size_t index, double floor) {
  if (!(floor > 0.0)) return true;  // disabled
  const JsonValue* dedup = entry.find("dedup");
  const JsonValue* samples =
      dedup != nullptr && dedup->is_object() ? dedup->find("samples") : nullptr;
  if (samples == nullptr || !samples->is_array()) {
    std::cout << "note: " << entry_label(entry, index)
              << " has no dedup section — dedup gate skipped\n";
    return true;
  }
  const JsonValue* best = nullptr;
  double best_runs = 0.0;
  for (const JsonValue& s : samples->array) {
    const JsonValue* runs = s.find("runs");
    const JsonValue* speedup = s.find("speedup");
    if (runs == nullptr || runs->type != JsonValue::Type::Number ||
        speedup == nullptr || speedup->type != JsonValue::Type::Number)
      continue;
    if (best == nullptr || runs->number > best_runs) {
      best = &s;
      best_runs = runs->number;
    }
  }
  if (best == nullptr) {
    std::cout << "note: " << entry_label(entry, index)
              << " has no usable dedup samples — dedup gate skipped\n";
    return true;
  }
  const double speedup = best->find("speedup")->number;
  const JsonValue* hit_rate = best->find("hit_rate");
  const bool ok = speedup >= floor;
  std::cout << "  " << (ok ? "ok" : "REGRESSION") << "  dedup.speedup@runs="
            << static_cast<long long>(best_runs) << ": " << speedup
            << "x (floor " << floor << ")";
  if (hit_rate != nullptr && hit_rate->type == JsonValue::Type::Number)
    std::cout << ", hit rate " << hit_rate->number;
  std::cout << "\n";
  return ok;
}

/// Serve-cache gate on one entry: at the largest client count of the serve
/// section, the recorded offline-cache hit rate must clear `floor`. The
/// bench replays one request line against a resident daemon, so after the
/// warm-up every request should be answered from the cross-request cache;
/// a collapsing hit rate means the daemon silently re-analyzes per request.
/// Returns false on a violation.
bool serve_gate_ok(const JsonValue& entry, std::size_t index, double floor) {
  if (!(floor > 0.0)) return true;  // disabled
  const JsonValue* serve = entry.find("serve");
  const JsonValue* samples =
      serve != nullptr && serve->is_object() ? serve->find("samples") : nullptr;
  if (samples == nullptr || !samples->is_array()) {
    std::cout << "note: " << entry_label(entry, index)
              << " has no serve section — serve-cache gate skipped\n";
    return true;
  }
  const JsonValue* best = nullptr;
  double best_clients = 0.0;
  for (const JsonValue& s : samples->array) {
    const JsonValue* clients = s.find("clients");
    const JsonValue* rate = s.find("cache_hit_rate");
    if (clients == nullptr || clients->type != JsonValue::Type::Number ||
        rate == nullptr || rate->type != JsonValue::Type::Number)
      continue;
    if (best == nullptr || clients->number > best_clients) {
      best = &s;
      best_clients = clients->number;
    }
  }
  if (best == nullptr) {
    std::cout << "note: " << entry_label(entry, index)
              << " has no usable serve samples — serve-cache gate skipped\n";
    return true;
  }
  const double rate = best->find("cache_hit_rate")->number;
  const bool ok = rate >= floor;
  std::cout << "  " << (ok ? "ok" : "REGRESSION")
            << "  serve.cache_hit_rate@clients="
            << static_cast<long long>(best_clients) << ": " << rate
            << " (floor " << floor << ")";
  const JsonValue* rps = best->find("requests_per_sec");
  if (rps != nullptr && rps->type == JsonValue::Type::Number)
    std::cout << ", " << rps->number << " requests/sec";
  std::cout << "\n";
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);

  std::ifstream in(args.history);
  if (!in) {
    std::cerr << "error: cannot open history '" << args.history << "'\n";
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  JsonValue history;
  try {
    history = json_parse(buf.str());
  } catch (const std::exception& e) {
    std::cerr << "error: malformed history: " << e.what() << "\n";
    return 2;
  }
  if (!history.is_array()) {
    std::cerr << "error: history is not a JSON array of entries\n";
    return 2;
  }

  // Newest two clean entries, scanning from the end of the append-only
  // history (candidate first, then its baseline).
  const JsonValue* candidate = nullptr;
  const JsonValue* baseline = nullptr;
  std::size_t candidate_idx = 0, baseline_idx = 0;
  for (std::size_t i = history.array.size(); i-- > 0;) {
    if (!is_clean(history.array[i], i)) continue;
    if (candidate == nullptr) {
      candidate = &history.array[i];
      candidate_idx = i;
    } else {
      baseline = &history.array[i];
      baseline_idx = i;
      break;
    }
  }
  if (candidate == nullptr || baseline == nullptr) {
    std::cout << "note: fewer than two clean entries in '" << args.history
              << "' — nothing to compare yet\n";
    return 0;
  }

  std::cout << "comparing " << entry_label(*baseline, baseline_idx)
            << " -> " << entry_label(*candidate, candidate_idx)
            << " (threshold " << args.threshold_pct << "%)\n";

  const std::vector<Series> base = collect_entry(*baseline);
  const std::vector<Series> cand = collect_entry(*candidate);
  int compared = 0;
  // Names of every series/gate that tripped: the failure summary must say
  // *which* measurement regressed, not just how many.
  std::vector<std::string> regressed_names;
  for (const Series& b : base) {
    const Series* c = nullptr;
    for (const Series& s : cand)
      if (s.name == b.name) {
        c = &s;
        break;
      }
    if (c == nullptr || !(b.value > 0.0)) continue;
    ++compared;
    const double delta_pct = (c->value - b.value) / b.value * 100.0;
    const bool regressed = delta_pct < -args.threshold_pct;
    if (regressed) regressed_names.push_back(b.name);
    std::cout << "  " << (regressed ? "REGRESSION" : "ok") << "  " << b.name
              << ": " << b.value << " -> " << c->value << " ("
              << (delta_pct >= 0 ? "+" : "") << delta_pct << "%)\n";
  }
  // Scaling gate on the newest entry alone: absolute throughput can sit
  // comfortably inside the threshold while thread scaling quietly decays
  // to ~1x, so efficiency is judged against an absolute floor, not a
  // delta.
  const bool efficiency_ok =
      efficiency_gate_ok(*candidate, candidate_idx, args.efficiency_floor);
  if (!efficiency_ok) regressed_names.push_back("sweep.efficiency floor");
  // Batched-engine gate, also newest-entry-only: the batched and scalar
  // numbers share one bench invocation, so a floor on their ratio is
  // host-independent in a way a cross-entry delta is not.
  const bool batch_ok =
      batch_gate_ok(*candidate, candidate_idx, args.batch_floor);
  if (!batch_ok) regressed_names.push_back("batch.speedup floor");
  // Scenario-dedup gate, newest-entry-only for the same reason.
  const bool dedup_ok =
      dedup_gate_ok(*candidate, candidate_idx, args.dedup_floor);
  if (!dedup_ok) regressed_names.push_back("dedup.speedup floor");
  // Serve-cache gate, newest-entry-only: the hit rate is a property of the
  // daemon's caching, not of host speed, so it gets an absolute floor.
  const bool serve_ok =
      serve_gate_ok(*candidate, candidate_idx, args.serve_cache_floor);
  if (!serve_ok) regressed_names.push_back("serve.cache_hit_rate floor");

  if (compared == 0 && efficiency_ok && batch_ok && dedup_ok && serve_ok) {
    std::cout << "note: no matching throughput series between the two "
                 "entries\n";
    return 0;
  }
  if (!regressed_names.empty()) {
    std::cout << regressed_names.size() << " series regressed (threshold "
              << args.threshold_pct << "%, efficiency floor "
              << args.efficiency_floor << ", batch floor " << args.batch_floor
              << ", dedup floor " << args.dedup_floor << ", serve cache floor "
              << args.serve_cache_floor << "):\n";
    for (const std::string& name : regressed_names)
      std::cout << "  FAILED  " << name << "\n";
    return args.check ? 1 : 0;
  }
  std::cout << "all " << compared
            << " series within threshold; efficiency, batch, dedup and serve "
               "floors met\n";
  return 0;
}
