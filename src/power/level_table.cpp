#include "power/level_table.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace paserta {

LevelTable::LevelTable(std::string name, std::vector<Level> levels)
    : name_(std::move(name)), levels_(std::move(levels)) {
  PASERTA_REQUIRE(!levels_.empty(), "level table '" << name_ << "' is empty");
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    PASERTA_REQUIRE(levels_[i].freq > 0 && levels_[i].volts > 0.0,
                    "level table '" << name_ << "': level " << i
                                    << " has non-positive freq/voltage");
    if (i > 0) {
      PASERTA_REQUIRE(levels_[i].freq > levels_[i - 1].freq,
                      "level table '" << name_
                                      << "': frequencies must be strictly "
                                         "increasing");
      PASERTA_REQUIRE(levels_[i].volts >= levels_[i - 1].volts,
                      "level table '" << name_
                                      << "': voltage must be non-decreasing "
                                         "with frequency");
    }
  }
}

std::size_t LevelTable::index_of(Freq f) const {
  for (std::size_t i = 0; i < levels_.size(); ++i)
    if (levels_[i].freq == f) return i;
  PASERTA_REQUIRE(false, "frequency " << f << " Hz not in table '" << name_
                                      << "'");
  return 0;  // unreachable
}

LevelTable LevelTable::transmeta_tm5400() {
  // 16 settings, 200..700 MHz / 1.10..1.65 V, uniform steps.
  std::vector<Level> lv;
  constexpr int kN = 16;
  for (int i = 0; i < kN; ++i) {
    const double frac = static_cast<double>(i) / (kN - 1);
    const double mhz = 200.0 + frac * 500.0;
    const double v = 1.10 + frac * 0.55;
    lv.push_back(Level{static_cast<Freq>(mhz * 1e6 + 0.5), v});
  }
  return LevelTable("TransmetaTM5400", std::move(lv));
}

LevelTable LevelTable::intel_xscale() {
  return LevelTable("IntelXScale",
                    {Level{150 * kMHz, 0.75}, Level{400 * kMHz, 1.0},
                     Level{600 * kMHz, 1.3}, Level{800 * kMHz, 1.6},
                     Level{1000 * kMHz, 1.8}});
}

LevelTable LevelTable::synthetic(std::string name, std::size_t n, Freq f_min,
                                 Freq f_max, double v_min, double v_max) {
  PASERTA_REQUIRE(n >= 1, "synthetic table needs at least one level");
  PASERTA_REQUIRE(f_min <= f_max && v_min <= v_max,
                  "synthetic table bounds out of order");
  std::vector<Level> lv;
  if (n == 1) {
    lv.push_back(Level{f_max, v_max});
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      const double frac = static_cast<double>(i) / static_cast<double>(n - 1);
      const auto f = static_cast<Freq>(
          std::round(static_cast<double>(f_min) +
                     frac * static_cast<double>(f_max - f_min)));
      lv.push_back(Level{f, v_min + frac * (v_max - v_min)});
    }
  }
  return LevelTable(std::move(name), std::move(lv));
}

LevelTable LevelTable::ideal_continuous(Freq f_min, Freq f_max, double v_min,
                                        double v_max) {
  return synthetic("IdealContinuous", 200, f_min, f_max, v_min, v_max);
}

}  // namespace paserta
