# Empty dependencies file for test_property_platforms.
# This may be replaced when dependencies are built.
