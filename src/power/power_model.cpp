#include "power/power_model.h"

#include "common/error.h"

namespace paserta {

PowerModel::PowerModel(LevelTable table, double c_ef, double idle_fraction)
    : table_(std::move(table)), c_ef_(c_ef), idle_fraction_(idle_fraction) {
  PASERTA_REQUIRE(c_ef_ > 0.0, "effective capacitance must be positive");
  PASERTA_REQUIRE(idle_fraction_ >= 0.0 && idle_fraction_ <= 1.0,
                  "idle fraction must be in [0,1]");
  level_power_.reserve(table_.size());
  for (std::size_t i = 0; i < table_.size(); ++i)
    level_power_.push_back(power(table_.level(i)));
  idle_power_ = idle_fraction_ * max_power();
}

}  // namespace paserta
