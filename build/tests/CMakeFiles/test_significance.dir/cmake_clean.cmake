file(REMOVE_RECURSE
  "CMakeFiles/test_significance.dir/test_significance.cpp.o"
  "CMakeFiles/test_significance.dir/test_significance.cpp.o.d"
  "test_significance"
  "test_significance.pdb"
  "test_significance[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_significance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
