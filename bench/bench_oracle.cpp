// Oracle-gap study (paper §3.3's clairvoyant intuition, quantified):
// how far each scheme sits above the clairvoyant single-speed optimum,
// per load, on both processor models. A gap of 1.0 means oracle-equal.
#include "apps/synthetic.h"
#include "bench_util.h"
#include "common/stats.h"
#include "core/oracle.h"
#include "sim/sampler.h"
#include "core/offline.h"

using namespace paserta;

int main(int argc, char** argv) {
  const int runs = benchutil::runs_from_args(argc, argv, 300);
  const Application app = apps::build_synthetic();
  // One sampler for the whole grid (stream-compatible with draw_scenario).
  const ScenarioSampler sampler(app.graph);
  const std::vector<double> loads = {0.2, 0.4, 0.6, 0.8};
  const Scheme schemes[] = {Scheme::SPM, Scheme::GSS, Scheme::SS1,
                            Scheme::SS2, Scheme::AS};

  for (const LevelTable& table :
       {LevelTable::transmeta_tm5400(), LevelTable::intel_xscale()}) {
    const PowerModel pm(table);
    Overheads ovh;
    ovh.speed_change_time = SimTime::from_us(5.0);

    std::cout << "# Oracle gap (scheme energy / clairvoyant single-speed "
                 "energy), synthetic, 2 CPUs, " << table.name() << ", runs="
              << runs << "\n";
    Table t({"load", "SPM", "GSS", "SS1", "SS2", "AS"});
    for (double load : loads) {
      OfflineOptions o;
      o.cpus = 2;
      o.overhead_budget = ovh.worst_case_budget(table);
      const SimTime w = canonical_worst_makespan(app, 2, o.overhead_budget);
      o.deadline = SimTime{static_cast<std::int64_t>(
          static_cast<double>(w.ps) / load + 1)};
      const OfflineResult off = analyze_offline(app, o);

      Rng master(991);
      std::vector<RunningStat> gap(std::size(schemes));
      for (int r = 0; r < runs; ++r) {
        Rng rng = master.fork();
        const RunScenario sc = sampler.draw(rng);
        const OracleResult oracle = clairvoyant_oracle(app, off, pm, ovh, sc);
        for (std::size_t s = 0; s < std::size(schemes); ++s) {
          const SimResult res = simulate(app, off, pm, ovh, schemes[s], sc);
          gap[s].add(res.total_energy() / oracle.energy);
        }
      }
      std::vector<std::string> row{Table::num(load, 2)};
      for (auto& g : gap) row.push_back(Table::num(g.mean()));
      t.add_row(std::move(row));
    }
    t.write_csv(std::cout);
    std::cout << "\n";
  }
  return 0;
}
