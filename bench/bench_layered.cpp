// Parallelism study on layered (TGFF-style) graphs: the paper attributes
// the 6-CPU degradation to "limited parallelism and frequent idleness of
// the processors". Wide layered workloads supply abundant parallelism;
// this bench shows the dynamic schemes holding their savings at higher CPU
// counts when the workload can actually feed the processors — isolating
// the paper's explanation.
#include "apps/layered.h"
#include "bench_util.h"

using namespace paserta;

int main(int argc, char** argv) {
  const int runs = benchutil::runs_from_args(argc, argv, 400);

  struct Shape {
    const char* name;
    int min_width;
    int max_width;
  };
  const Shape shapes[] = {{"narrow", 1, 2}, {"wide", 6, 8}};

  for (const Shape& shape : shapes) {
    apps::LayeredConfig lc;
    lc.layers = 5;
    lc.min_width = shape.min_width;
    lc.max_width = shape.max_width;
    Rng rng(2718);
    const Application app = apps::layered_application(rng, lc, 3, 0.3,
                                                      shape.name);

    std::cout << "# Layered '" << shape.name << "' (" << app.graph.task_count()
              << " tasks): GSS energy vs CPUs at load 0.6, Transmeta\n";
    Table t({"cpus", "SPM", "GSS", "AS"});
    for (int cpus : {1, 2, 4, 8}) {
      auto cfg = benchutil::paper_config(LevelTable::transmeta_tm5400(), cpus,
                                         runs);
      cfg.schemes = {Scheme::SPM, Scheme::GSS, Scheme::AS};
      const auto points = sweep_load(app, cfg, {0.6});
      t.add_row({std::to_string(cpus),
                 Table::num(points[0].of(Scheme::SPM).norm_energy.mean()),
                 Table::num(points[0].of(Scheme::GSS).norm_energy.mean()),
                 Table::num(points[0].of(Scheme::AS).norm_energy.mean())});
    }
    t.write_csv(std::cout);
    std::cout << "\n";
  }
  return 0;
}
