// Offline phase of the AND/OR greedy slack-sharing algorithm (paper §3.2).
//
// Round 1 builds canonical LTF schedules for every program section (WCETs
// at f_max, inflated by a per-dispatch overhead budget so the online
// guarantee survives speed-computation and voltage-switch costs), derives
// the execution order (EO) of every node — including the OR rules: an OR
// node's EO is one past the largest EO of its predecessors, and tasks on
// different alternatives of the same fork share EO values — and collects
// the per-path worst/average remaining times stored at the power-management
// points.
//
// Round 2 shifts every canonical schedule (recursively through embedded OR
// structures) so it finishes exactly at the deadline, yielding each node's
// latest start time LST(i): the time it must start for the rest of the
// shifted schedule to meet the deadline. The online phase claims slack for
// a task as LST(i) - t.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/list_sched.h"
#include "graph/program.h"
#include "power/power_model.h"

namespace paserta {

struct OfflineOptions {
  int cpus = 2;
  /// Application deadline D. Must be positive.
  SimTime deadline{};
  /// Per-dispatch worst-case overhead budget added to every task's WCET
  /// (and ACET) in canonical schedules; normally
  /// Overheads::worst_case_budget(table).
  SimTime overhead_budget{};
  /// Priority rule for the canonical schedules. The online phase preserves
  /// whatever execution order this produced (paper §3.2: "given any
  /// heuristic, if the off-line phase does not fail, the following on-line
  /// phase can be applied under the same heuristic").
  ListHeuristic heuristic = ListHeuristic::LongestTaskFirst;
};

/// Remaining-time profile attached to an OR fork's power-management point:
/// per alternative, the worst/average time from the fork to the end of the
/// application along that path (the paper's w_p and a_p).
struct OrForkProfile {
  std::vector<SimTime> rem_w_alt;
  std::vector<SimTime> rem_a_alt;
};

class OfflineResult {
 public:
  int cpus() const { return cpus_; }
  SimTime deadline() const { return deadline_; }
  SimTime overhead_budget() const { return overhead_budget_; }

  /// W: canonical worst-case finish time along the longest path.
  SimTime worst_makespan() const { return worst_makespan_; }
  /// A: probability-weighted average-case finish time of the application.
  SimTime average_makespan() const { return average_makespan_; }
  /// Whether W <= D (the offline phase "fails" otherwise; online schemes
  /// then cannot guarantee the deadline).
  bool feasible() const { return worst_makespan_ <= deadline_; }

  std::uint32_t eo(NodeId id) const { return eo_.at(id.value); }
  SimTime lst(NodeId id) const { return lst_.at(id.value); }
  /// Estimated end time: LST + inflated WCET (worst-case finish in the
  /// shifted schedule) — what the online phase allocates to the task.
  SimTime eet(NodeId id) const { return eet_.at(id.value); }
  SimTime inflated_wcet(NodeId id) const { return inflated_wcet_.at(id.value); }

  /// Expected average-case remaining time *after* the given OR node fires
  /// (for OR joins; for forks prefer fork_profile(), which conditions on
  /// the chosen alternative).
  SimTime rem_a_after(NodeId id) const { return rem_a_.at(id.value); }
  SimTime rem_w_after(NodeId id) const { return rem_w_.at(id.value); }

  const OrForkProfile& fork_profile(NodeId fork) const {
    return fork_profiles_.at(fork.value);
  }
  bool has_fork_profile(NodeId id) const {
    return fork_profiles_.contains(id.value);
  }

  std::uint32_t max_eo() const { return max_eo_; }

  // Implementation detail: the fields below are populated by
  // analyze_offline (and its internal Analyzer); use the accessors above.
 public:
  int cpus_ = 0;
  SimTime deadline_{};
  SimTime overhead_budget_{};
  SimTime worst_makespan_{};
  SimTime average_makespan_{};
  std::vector<std::uint32_t> eo_;
  std::vector<SimTime> lst_;
  std::vector<SimTime> eet_;
  std::vector<SimTime> inflated_wcet_;
  std::vector<SimTime> rem_a_;
  std::vector<SimTime> rem_w_;
  std::unordered_map<std::uint32_t, OrForkProfile> fork_profiles_;
  std::uint32_t max_eo_ = 0;
};

/// Runs both offline rounds. Throws paserta::Error on invalid options.
OfflineResult analyze_offline(const Application& app,
                              const OfflineOptions& options);

/// Convenience: canonical worst-case makespan only (used to derive a
/// deadline from a load factor: D = W / load).
SimTime canonical_worst_makespan(
    const Application& app, int cpus, SimTime overhead_budget,
    ListHeuristic heuristic = ListHeuristic::LongestTaskFirst);

}  // namespace paserta
