#include "sim/scenario.h"

#include <algorithm>

#include "common/error.h"

namespace paserta {

RunScenario draw_scenario(const AndOrGraph& g, Rng& rng) {
  RunScenario sc;
  draw_scenario(g, rng, sc);
  return sc;
}

void draw_scenario(const AndOrGraph& g, Rng& rng, RunScenario& out) {
  out.actual.assign(g.size(), SimTime::zero());
  out.or_choice.assign(g.size(), -1);

  // Index loop instead of all_nodes(): the latter materializes a vector,
  // which would put an allocation back into every hot-loop draw.
  for (std::uint32_t v = 0; v < g.size(); ++v) {
    const Node& n = g.node(NodeId{v});
    if (n.kind == NodeKind::Computation) {
      const double mean = static_cast<double>(n.acet.ps);
      const double sigma = static_cast<double>((n.wcet - n.acet).ps) / 3.0;
      double x = sigma > 0.0 ? rng.next_normal(mean, sigma) : mean;
      const double lo =
          std::max(1.0, 2.0 * mean - static_cast<double>(n.wcet.ps));
      x = std::clamp(x, lo, static_cast<double>(n.wcet.ps));
      out.actual[v] = SimTime{static_cast<std::int64_t>(x + 0.5)};
    } else if (n.is_or_fork()) {
      out.or_choice[v] = static_cast<int>(rng.next_discrete(n.succ_prob));
    }
  }
}

RunScenario worst_case_scenario(const AndOrGraph& g,
                                const std::vector<int>* choices) {
  RunScenario sc;
  sc.actual.resize(g.size(), SimTime::zero());
  sc.or_choice.resize(g.size(), -1);
  // Index loop instead of all_nodes(): the latter materializes a vector
  // per call (see draw_scenario above).
  for (std::uint32_t v = 0; v < g.size(); ++v) {
    const Node& n = g.node(NodeId{v});
    if (n.kind == NodeKind::Computation) {
      sc.actual[v] = n.wcet;
    } else if (n.is_or_fork()) {
      int c = 0;
      if (choices != nullptr) c = choices->at(v);
      PASERTA_REQUIRE(c >= 0 && static_cast<std::size_t>(c) < n.succs.size(),
                      "invalid fork choice for '" << n.name << "'");
      sc.or_choice[v] = c;
    }
  }
  return sc;
}

void assign_alpha(AndOrGraph& g, double alpha, Rng* jitter_rng,
                  double min_frac) {
  PASERTA_REQUIRE(alpha > 0.0 && alpha <= 1.0,
                  "alpha must be in (0,1], got " << alpha);
  PASERTA_REQUIRE(min_frac > 0.0 && min_frac <= 1.0,
                  "min_frac must be in (0,1]");
  // Index loop instead of all_nodes(): the latter materializes a vector
  // per call, and alpha sweeps call this once per point.
  for (std::uint32_t v = 0; v < g.size(); ++v) {
    const NodeId id{v};
    const Node& n = g.node(id);
    if (n.kind != NodeKind::Computation) continue;
    const double w = static_cast<double>(n.wcet.ps);
    double a = alpha * w;
    if (jitter_rng != nullptr) {
      const double sigma = (1.0 - alpha) * w / 3.0;
      if (sigma > 0.0) a = jitter_rng->next_normal(alpha * w, sigma);
    }
    a = std::clamp(a, std::max(1.0, min_frac * w), w);
    g.set_acet(id, SimTime{static_cast<std::int64_t>(a + 0.5)});
  }
}

}  // namespace paserta
