// Property-based tests (parameterized gtest): over random AND/OR
// applications x schemes x CPU counts x seeds, the invariants of the
// paper's Theorem 1 and of the energy model must hold universally.
#include <gtest/gtest.h>

#include <tuple>

#include "apps/random_app.h"
#include "core/offline.h"
#include "harness/experiment.h"
#include "sim/engine.h"
#include "sim/verify.h"

namespace paserta {
namespace {

struct PropertyCase {
  std::uint64_t app_seed;
  int cpus;
  double load;
};

class SchedulingProperties
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int, double>> {
 protected:
  void SetUp() override {
    const auto [seed, cpus, load] = GetParam();
    apps::RandomAppConfig cfg;
    Rng rng(seed);
    app_ = apps::random_application(rng, cfg, "prop");
    cpus_ = cpus;
    const SimTime w = canonical_worst_makespan(
        app_, cpus_, ovh_.worst_case_budget(pm_.table()));
    OfflineOptions o;
    o.cpus = cpus_;
    o.deadline = SimTime{static_cast<std::int64_t>(
        static_cast<double>(w.ps) / load + 1)};
    o.overhead_budget = ovh_.worst_case_budget(pm_.table());
    off_ = analyze_offline(app_, o);
    scenario_rng_ = Rng(seed ^ 0xDEADBEEFULL);
  }

  Application app_;
  int cpus_ = 2;
  PowerModel pm_{LevelTable::transmeta_tm5400()};
  Overheads ovh_;
  OfflineResult off_;
  Rng scenario_rng_{0};
};

constexpr Scheme kDynamicSchemes[] = {Scheme::GSS, Scheme::SS1, Scheme::SS2,
                                      Scheme::AS};

TEST_P(SchedulingProperties, Theorem1_NoDeadlineMisses) {
  ASSERT_TRUE(off_.feasible());
  for (int run = 0; run < 8; ++run) {
    const RunScenario sc = draw_scenario(app_.graph, scenario_rng_);
    for (Scheme s : {Scheme::NPM, Scheme::SPM, Scheme::GSS, Scheme::SS1,
                     Scheme::SS2, Scheme::AS}) {
      const SimResult r = simulate(app_, off_, pm_, ovh_, s, sc);
      ASSERT_TRUE(r.deadline_met)
          << to_string(s) << " missed deadline (finish "
          << to_string(r.finish_time) << " vs D "
          << to_string(off_.deadline()) << ")";
    }
  }
}

TEST_P(SchedulingProperties, Theorem1_WorstCaseScenario) {
  ASSERT_TRUE(off_.feasible());
  // The adversarial case: every task at WCET, default fork choices.
  const RunScenario sc = worst_case_scenario(app_.graph);
  for (Scheme s : kDynamicSchemes) {
    const SimResult r = simulate(app_, off_, pm_, ovh_, s, sc);
    ASSERT_TRUE(r.deadline_met) << to_string(s);
  }
}

TEST_P(SchedulingProperties, TracesWellFormed) {
  for (int run = 0; run < 4; ++run) {
    const RunScenario sc = draw_scenario(app_.graph, scenario_rng_);
    for (Scheme s : {Scheme::NPM, Scheme::SPM, Scheme::GSS, Scheme::AS}) {
      const SimResult r = simulate(app_, off_, pm_, ovh_, s, sc);
      const VerifyReport rep = verify_trace(app_, off_, sc, r);
      ASSERT_TRUE(rep.ok)
          << to_string(s) << ": "
          << (rep.violations.empty() ? "?" : rep.violations[0]);
    }
  }
}

TEST_P(SchedulingProperties, ManagedEnergyNeverExceedsNpm) {
  for (int run = 0; run < 4; ++run) {
    const RunScenario sc = draw_scenario(app_.graph, scenario_rng_);
    const SimResult npm = simulate(app_, off_, pm_, ovh_, Scheme::NPM, sc);
    for (Scheme s : {Scheme::SPM, Scheme::GSS, Scheme::SS1, Scheme::SS2,
                     Scheme::AS}) {
      const SimResult r = simulate(app_, off_, pm_, ovh_, s, sc);
      ASSERT_LE(r.total_energy(), npm.total_energy() * (1.0 + 1e-9))
          << to_string(s);
    }
  }
}

TEST_P(SchedulingProperties, DeterministicReplay) {
  Rng r1(42), r2(42);
  const RunScenario s1 = draw_scenario(app_.graph, r1);
  const RunScenario s2 = draw_scenario(app_.graph, r2);
  const SimResult a = simulate(app_, off_, pm_, ovh_, Scheme::AS, s1);
  const SimResult b = simulate(app_, off_, pm_, ovh_, Scheme::AS, s2);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  EXPECT_DOUBLE_EQ(a.total_energy(), b.total_energy());
  EXPECT_EQ(a.finish_time, b.finish_time);
  EXPECT_EQ(a.speed_changes, b.speed_changes);
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].node, b.trace[i].node);
    EXPECT_EQ(a.trace[i].cpu, b.trace[i].cpu);
    EXPECT_EQ(a.trace[i].finish, b.trace[i].finish);
  }
}

TEST_P(SchedulingProperties, SpeculativeTasksNeverRunBelowTheFloor) {
  // SS1's floor is constant, so every computation node must execute at a
  // level at least as fast as the floor.
  auto policy = make_policy(Scheme::SS1);
  policy->reset(off_, pm_);
  const Freq floor = policy->floor_freq(SimTime::zero());
  for (int run = 0; run < 3; ++run) {
    const RunScenario sc = draw_scenario(app_.graph, scenario_rng_);
    policy->reset(off_, pm_);
    const SimResult r = simulate(app_, off_, pm_, ovh_, *policy, sc);
    for (const TaskRecord& rec : r.trace) {
      if (app_.graph.node(rec.node).is_dummy()) continue;
      EXPECT_GE(pm_.table().level(rec.level).freq, floor);
    }
  }
}

using PropertyParam = std::tuple<std::uint64_t, int, double>;

std::string property_case_name(
    const ::testing::TestParamInfo<PropertyParam>& info) {
  const auto [seed, cpus, load] = info.param;
  return "seed" + std::to_string(seed) + "_cpus" + std::to_string(cpus) +
         "_load" + std::to_string(static_cast<int>(load * 100));
}

INSTANTIATE_TEST_SUITE_P(
    RandomApps, SchedulingProperties,
    ::testing::Combine(::testing::Values(1ull, 2ull, 3ull, 5ull, 8ull, 13ull,
                                         21ull, 34ull),
                       ::testing::Values(1, 2, 4),
                       ::testing::Values(0.3, 0.7, 1.0)),
    property_case_name);

TEST_P(SchedulingProperties, CanonicalExactness) {
  // With zero overheads, all-WCET actuals and every fork taking its
  // longest-remaining alternative, the NPM run IS the canonical schedule:
  // it must finish exactly at W. Ties the online engine to the offline
  // analysis bit-for-bit.
  OfflineOptions o;
  o.cpus = cpus_;
  o.deadline = off_.deadline();
  o.overhead_budget = SimTime::zero();
  const OfflineResult off0 = analyze_offline(app_, o);

  std::vector<int> choices(app_.graph.size(), -1);
  for (NodeId id : app_.graph.all_nodes()) {
    if (!app_.graph.node(id).is_or_fork()) continue;
    const OrForkProfile& prof = off0.fork_profile(id);
    int best = 0;
    for (std::size_t a = 1; a < prof.rem_w_alt.size(); ++a)
      if (prof.rem_w_alt[a] > prof.rem_w_alt[best])
        best = static_cast<int>(a);
    choices[id.value] = best;
  }
  const RunScenario sc = worst_case_scenario(app_.graph, &choices);
  Overheads none;
  none.speed_compute_cycles = 0;
  none.speed_change_time = SimTime::zero();
  const SimResult r = simulate(app_, off0, pm_, none, Scheme::NPM, sc);
  EXPECT_EQ(r.finish_time, off0.worst_makespan());
}

// ---- Offline-analysis properties over random apps ------------------------

class OfflineProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OfflineProperties, LstOrderingAndFeasibility) {
  apps::RandomAppConfig cfg;
  Rng rng(GetParam());
  const Application app = apps::random_application(rng, cfg);
  for (int cpus : {1, 2, 4}) {
    const SimTime w = canonical_worst_makespan(app, cpus, SimTime::zero());
    OfflineOptions o;
    o.cpus = cpus;
    o.deadline = w;  // exactly feasible
    const OfflineResult off = analyze_offline(app, o);
    ASSERT_TRUE(off.feasible());
    for (NodeId id : app.graph.all_nodes()) {
      // LSTs are within [0, D] and every EET within (0, D].
      EXPECT_GE(off.lst(id), SimTime::zero());
      EXPECT_LE(off.eet(id), off.deadline());
      // Precedence: a node's LST is not before any predecessor's LST
      // ... unless they sit on exclusive paths (OR-join preds), where the
      // shifted schedules are per-path; restrict to same-path edges.
      if (app.graph.node(id).kind != NodeKind::OrNode) {
        for (NodeId pred : app.graph.node(id).preds) {
          EXPECT_LE(off.lst(pred), off.lst(id))
              << app.graph.node(pred).name << " -> "
              << app.graph.node(id).name;
        }
      }
    }
  }
}

TEST_P(OfflineProperties, AverageNeverExceedsWorst) {
  apps::RandomAppConfig cfg;
  Rng rng(GetParam());
  const Application app = apps::random_application(rng, cfg);
  OfflineOptions o;
  o.cpus = 2;
  o.deadline = SimTime::from_sec(10);
  const OfflineResult off = analyze_offline(app, o);
  EXPECT_LE(off.average_makespan(), off.worst_makespan());
  EXPECT_GT(off.average_makespan(), SimTime::zero());
  for (NodeId id : app.graph.all_nodes()) {
    if (!app.graph.node(id).is_or_fork()) continue;
    const OrForkProfile& prof = off.fork_profile(id);
    for (std::size_t a = 0; a < prof.rem_w_alt.size(); ++a)
      EXPECT_LE(prof.rem_a_alt[a], prof.rem_w_alt[a]);
  }
}

TEST_P(OfflineProperties, ExecutionOrdersAreConsistent) {
  apps::RandomAppConfig cfg;
  Rng rng(GetParam());
  const Application app = apps::random_application(rng, cfg);
  OfflineOptions o;
  o.cpus = 3;
  o.deadline = SimTime::from_sec(10);
  const OfflineResult off = analyze_offline(app, o);
  // EO values are bounded by max_eo and unique among co-executable nodes:
  // check uniqueness per fully-sampled scenario.
  Rng srng(GetParam() * 7 + 1);
  const RunScenario sc = draw_scenario(app.graph, srng);
  const auto executed = executed_set(app.graph, sc);
  std::vector<std::uint32_t> eos;
  for (NodeId id : app.graph.all_nodes()) {
    EXPECT_LT(off.eo(id), off.max_eo());
    if (executed[id.value]) eos.push_back(off.eo(id));
  }
  std::sort(eos.begin(), eos.end());
  EXPECT_TRUE(std::adjacent_find(eos.begin(), eos.end()) == eos.end())
      << "duplicate EO among co-executable nodes";
}

INSTANTIATE_TEST_SUITE_P(Seeds, OfflineProperties,
                         ::testing::Range<std::uint64_t>(100, 130));

}  // namespace
}  // namespace paserta
