// Tests for the precompiled ScenarioSampler (sim/sampler.h).
//
// The sampler's contract is *bit-identity* with the legacy draw_scenario
// walk: identical drawn values AND identical RNG stream consumption for any
// seed (DESIGN.md §10). These tests pin that contract at three levels:
// per-draw (scenario arrays and generator state), per-compile (validation
// and template baking), and per-sweep (run_point's sampler path against
// run_point_unpooled's legacy path on the paper's fig4a workload, across
// loads and thread counts).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "apps/atr.h"
#include "apps/mpeg.h"
#include "apps/synthetic.h"
#include "common/error.h"
#include "common/rng.h"
#include "core/offline.h"
#include "graph/graph.h"
#include "harness/experiment.h"
#include "sim/sampler.h"
#include "sim/scenario.h"

namespace paserta {
namespace {

void expect_scenarios_equal(const RunScenario& a, const RunScenario& b) {
  ASSERT_EQ(a.actual.size(), b.actual.size());
  ASSERT_EQ(a.or_choice.size(), b.or_choice.size());
  for (std::size_t i = 0; i < a.actual.size(); ++i) {
    EXPECT_EQ(a.actual[i], b.actual[i]) << "actual[" << i << "]";
    EXPECT_EQ(a.or_choice[i], b.or_choice[i]) << "or_choice[" << i << "]";
  }
}

/// Draw `draws` scenarios through both paths from the same seed and require
/// identical outputs and an RNG stream that stays in lockstep (the
/// interleaved next_u64 comparison fails on the first draw that consumes a
/// different number of variates).
void check_bit_identity(const AndOrGraph& g, std::uint64_t seed, int draws) {
  const ScenarioSampler sampler(g);
  EXPECT_EQ(sampler.node_count(), g.size());
  EXPECT_EQ(sampler.op_count(),
            sampler.gaussian_count() + sampler.fork_count());

  Rng legacy_rng(seed);
  Rng sampler_rng(seed);
  RunScenario legacy;
  RunScenario fast;
  for (int d = 0; d < draws; ++d) {
    draw_scenario(g, legacy_rng, legacy);
    sampler.draw_into(sampler_rng, fast);
    expect_scenarios_equal(legacy, fast);
    ASSERT_EQ(legacy_rng.next_u64(), sampler_rng.next_u64())
        << "RNG streams diverged after draw " << d;
  }
}

TEST(Sampler, BitIdenticalToDrawScenarioAtr) {
  check_bit_identity(apps::build_atr().graph, 42, 200);
}

TEST(Sampler, BitIdenticalToDrawScenarioMpeg) {
  check_bit_identity(apps::build_mpeg().graph, 7, 200);
}

TEST(Sampler, BitIdenticalToDrawScenarioSynthetic) {
  check_bit_identity(apps::build_synthetic().graph, 12345, 200);
}

TEST(Sampler, AllocatingDrawMatchesDrawInto) {
  const AndOrGraph& g = apps::build_atr().graph;
  const ScenarioSampler sampler(g);
  Rng a(99);
  Rng b(99);
  RunScenario into;
  for (int d = 0; d < 20; ++d) {
    const RunScenario fresh = sampler.draw(a);
    sampler.draw_into(b, into);
    expect_scenarios_equal(fresh, into);
  }
}

TEST(Sampler, CountsMatchGraphStructure) {
  const AndOrGraph& g = apps::build_atr().graph;
  const ScenarioSampler sampler(g);
  std::size_t gaussians = 0;
  std::size_t forks = 0;
  for (std::uint32_t v = 0; v < g.size(); ++v) {
    const Node& n = g.node(NodeId{v});
    if (n.kind == NodeKind::Computation && n.acet < n.wcet) ++gaussians;
    if (n.is_or_fork()) ++forks;
  }
  EXPECT_EQ(sampler.gaussian_count(), gaussians);
  EXPECT_EQ(sampler.fork_count(), forks);
}

TEST(Sampler, DegenerateNodesConsumeNoRandomness) {
  // acet == wcet tasks are baked into the template: a draw over a fully
  // degenerate graph must not advance the generator.
  AndOrGraph g;
  const NodeId a = g.add_task("a", SimTime::from_us(5), SimTime::from_us(5));
  const NodeId b = g.add_task("b", SimTime::from_us(9), SimTime::from_us(9));
  g.add_edge(a, b);

  const ScenarioSampler sampler(g);
  EXPECT_EQ(sampler.op_count(), 0u);
  Rng rng(31);
  const RunScenario sc = sampler.draw(rng);
  EXPECT_EQ(sc.actual[0], SimTime::from_us(5));
  EXPECT_EQ(sc.actual[1], SimTime::from_us(9));
  Rng untouched(31);
  EXPECT_EQ(rng.next_u64(), untouched.next_u64());
}

// add_or_edge already rejects probabilities outside (0,1], so corrupt
// weight tables can only come from direct Node mutation; the sampler's
// compile-time validation is the defense-in-depth replacing the per-draw
// checks of Rng::next_discrete. Build a valid fork, then corrupt it.
AndOrGraph valid_fork_graph() {
  AndOrGraph g;
  const NodeId fork = g.add_or("fork");
  const NodeId a = g.add_task("a", SimTime::from_us(2), SimTime::from_us(1));
  const NodeId b = g.add_task("b", SimTime::from_us(2), SimTime::from_us(1));
  g.add_or_edge(fork, a, 0.5);
  g.add_or_edge(fork, b, 0.5);
  return g;
}

TEST(Sampler, CompileRejectsNegativeForkWeight) {
  AndOrGraph g = valid_fork_graph();
  g.node(NodeId{0}).succ_prob[1] = -0.5;
  EXPECT_THROW(ScenarioSampler{g}, Error);
}

TEST(Sampler, CompileRejectsZeroWeightSum) {
  AndOrGraph g = valid_fork_graph();
  g.node(NodeId{0}).succ_prob.assign(2, 0.0);
  EXPECT_THROW(ScenarioSampler{g}, Error);
}

TEST(Sampler, CompileRejectsMissingProbabilities) {
  AndOrGraph g = valid_fork_graph();
  g.node(NodeId{0}).succ_prob.pop_back();
  EXPECT_THROW(ScenarioSampler{g}, Error);
}

// ---------------------------------------------------- sweep regression

/// Bit-exact SweepPoint comparison (EXPECT_EQ on doubles, not *_DOUBLE_EQ:
/// the sampler path promises identical floating-point results, not merely
/// close ones).
void expect_points_bit_identical(const SweepPoint& a, const SweepPoint& b) {
  EXPECT_EQ(a.deadline, b.deadline);
  EXPECT_EQ(a.worst_makespan, b.worst_makespan);
  EXPECT_EQ(a.degenerate_runs, b.degenerate_runs);
  EXPECT_EQ(a.npm_energy.count(), b.npm_energy.count());
  EXPECT_EQ(a.npm_energy.mean(), b.npm_energy.mean());
  EXPECT_EQ(a.npm_energy.variance(), b.npm_energy.variance());
  ASSERT_EQ(a.stats.size(), b.stats.size());
  for (std::size_t s = 0; s < a.stats.size(); ++s) {
    const SchemeStats& x = a.stats[s];
    const SchemeStats& y = b.stats[s];
    EXPECT_EQ(x.scheme, y.scheme);
    EXPECT_EQ(x.norm_energy.mean(), y.norm_energy.mean());
    EXPECT_EQ(x.norm_energy.variance(), y.norm_energy.variance());
    EXPECT_EQ(x.speed_changes.mean(), y.speed_changes.mean());
    EXPECT_EQ(x.finish_frac.mean(), y.finish_frac.mean());
    EXPECT_EQ(x.busy_frac.mean(), y.busy_frac.mean());
    EXPECT_EQ(x.overhead_frac.mean(), y.overhead_frac.mean());
    EXPECT_EQ(x.idle_frac.mean(), y.idle_frac.mean());
    EXPECT_EQ(x.deadline_misses, y.deadline_misses);
    EXPECT_EQ(x.verify_failures, y.verify_failures);
  }
}

/// The PR 3 regression: run_point (precompiled sampler + inline run
/// accounting) must reproduce run_point_unpooled (legacy per-run
/// draw_scenario + post-run traversal) bit-for-bit on the paper's fig4a
/// workload — ATR on the Transmeta table, two CPUs — across multiple loads
/// and thread counts.
TEST(Sampler, SweepBitIdenticalToLegacyFig4a) {
  const Application app = apps::build_atr();
  ExperimentConfig cfg;
  cfg.cpus = 2;
  cfg.table = LevelTable::transmeta_tm5400();
  cfg.runs = 200;
  cfg.seed = 42;

  const PowerModel pm(cfg.table, cfg.c_ef, cfg.idle_fraction);
  const SimTime w = canonical_worst_makespan(
      app, cfg.cpus, cfg.overheads.worst_case_budget(pm.table()));

  for (const double load : {0.5, 0.8}) {
    const SimTime deadline{static_cast<std::int64_t>(
        std::ceil(static_cast<double>(w.ps) / load))};
    for (const int threads : {1, 3}) {
      cfg.threads = threads;
      const SweepPoint fast = run_point(app, cfg, deadline, load);
      const SweepPoint legacy =
          run_point_unpooled(app, cfg, deadline, load);
      expect_points_bit_identical(fast, legacy);
    }
  }
}

}  // namespace
}  // namespace paserta
