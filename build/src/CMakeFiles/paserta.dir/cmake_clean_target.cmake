file(REMOVE_RECURSE
  "libpaserta.a"
)
